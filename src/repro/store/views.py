"""Virtual views: a base (document or another view) plus one transform
query per layer, stacked to arbitrary depth.

A view never holds a tree of its own — it *is* its transform query.
Queries against a view are answered by the Compose Method against the
outermost transform (pruning the work to the subtrees the query
actually visits) over the base the stack bottoms out in; see
:meth:`repro.store.store.ViewStore.query` for the evaluation strategy.

The exception is a **hot** view: once the configurable
:class:`MaterializationPolicy` decides a view is queried often enough,
its tree is materialized once (a pure, structure-sharing transform of
its base — untouched subtrees are shared, not copied) and reused until
a commit on the underlying document invalidates it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from repro.store.documents import validate_name
from repro.store.errors import StoreError, UnknownNameError
from repro.transform.query import TransformQuery
from repro.xmltree.node import Element


@dataclass
class MaterializationPolicy:
    """When does a view earn a cached (materialized) tree?

    *hot_threshold* is the number of queries routed through a view
    before its tree is cached; ``enabled=False`` keeps every view fully
    virtual regardless of traffic (the paper's default posture).
    """

    hot_threshold: int = 8
    enabled: bool = True

    def should_materialize(self, view: "View") -> bool:
        return self.enabled and view.query_count >= self.hot_threshold


class View:
    """One stacked view layer: a name, its base, and a transform."""

    __slots__ = (
        "name",
        "base",
        "transform",
        "transform_text",
        "query_count",
        "materialized_root",
        "materialized_version",
    )

    # A View's mutable state is guarded by the *owning document's*
    # lock, which the View cannot name: every query/commit path in
    # ViewStore touches these fields only inside `with doc.lock:`.
    # unguarded[query_count, materialized_root, materialized_version]: guarded by the owning document's lock (held by every ViewStore query/commit path); a View cannot name it

    def __init__(
        self, name: str, base: str, transform: TransformQuery, transform_text: str
    ):
        self.name = name
        self.base = base
        self.transform = transform
        self.transform_text = transform_text
        self.query_count = 0
        self.materialized_root: Optional[Element] = None
        self.materialized_version: Optional[int] = None

    def materialization_for(self, version: int) -> Optional[Element]:
        """The cached tree, if it reflects document *version*."""
        if self.materialized_version == version:
            return self.materialized_root
        return None

    def set_materialized(self, root: Element, version: int) -> None:
        self.materialized_root = root
        self.materialized_version = version

    def invalidate(self) -> None:
        self.materialized_root = None
        self.materialized_version = None

    def rebase_materialization(self, version: int) -> bool:
        """Re-stamp the cached tree onto a new committed *version*.

        Delta-scoped invalidation calls this when a spliced commit is
        provably invisible through this view's stack (every patch
        swallowed by an inner delete/replace) — the tree is exact for
        the new version, so it survives the commit instead of being
        rebuilt.  Returns whether there was a materialization to keep.
        """
        if self.materialized_root is None:
            return False
        self.materialized_version = version
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hot = " materialized" if self.materialized_root is not None else ""
        return f"View({self.name!r} over {self.base!r}{hot})"


class ViewRegistry:
    """The name → :class:`View` table and its stacking structure."""

    # guarded-by[_views]: self._lock

    def __init__(self, policy: Optional[MaterializationPolicy] = None):
        self.policy = policy if policy is not None else MaterializationPolicy()
        self._views: dict[str, View] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Definition
    # ------------------------------------------------------------------

    def define(
        self, name: str, base: str, transform: TransformQuery, transform_text: str
    ) -> View:
        """Register a view.  The caller (the store facade) has already
        checked that *base* names an existing document or view and that
        *name* is free in the shared namespace."""
        validate_name(name)
        view = View(name, base, transform, transform_text)
        with self._lock:
            self._views[name] = view
        return view

    def drop(self, name: str) -> None:
        with self._lock:
            if name not in self._views:
                raise UnknownNameError(name)
            dependents = sorted(
                v.name for v in self._views.values() if v.base == name
            )
            if dependents:
                raise StoreError(
                    f"cannot drop view {name!r}: views {dependents} stack on it"
                )
            del self._views[name]

    # ------------------------------------------------------------------
    # Lookup and structure
    # ------------------------------------------------------------------

    def get(self, name: str) -> View:
        with self._lock:
            try:
                return self._views[name]
            except KeyError:
                raise UnknownNameError(name) from None

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._views

    def __len__(self) -> int:
        with self._lock:
            return len(self._views)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._views)

    def stack(self, name: str) -> tuple[str, list[View]]:
        """Resolve a view to ``(document_name, layers)`` with the layers
        ordered innermost (closest to the document) first."""
        chain: list[View] = []
        current = self.get(name)
        with self._lock:
            while True:
                chain.append(current)
                nxt = self._views.get(current.base)
                if nxt is None:
                    break
                current = nxt
        chain.reverse()
        return chain[0].base, chain

    def document_of(self, name: str) -> str:
        """The document a view stack bottoms out in."""
        return self.stack(name)[0]

    def dependents_of_document(self, doc_name: str) -> list[View]:
        """Every view whose stack bottoms out in *doc_name*."""
        with self._lock:
            names = list(self._views)
        return [v for v in map(self.get, names) if self.document_of(v.name) == doc_name]

    def invalidate_document(self, doc_name: str) -> int:
        """Drop materializations of every view over *doc_name*; returns
        how many were dropped.  Query counts survive — a hot view stays
        hot and re-materializes on its next query."""
        dropped = 0
        for view in self.dependents_of_document(doc_name):
            if view.materialized_root is not None:
                view.invalidate()
                dropped += 1
        return dropped

    def in_definition_order(self) -> list[View]:
        """Views ordered so every base precedes its dependents (the
        insertion order, which :meth:`define` guarantees is valid)."""
        with self._lock:
            return list(self._views.values())

    def stats(self) -> dict:
        out = {}
        for view in self.in_definition_order():
            doc_name, layers = self.stack(view.name)
            out[view.name] = {
                "base": view.base,
                "document": doc_name,
                "depth": len(layers),
                "queries": view.query_count,
                "materialized": view.materialized_root is not None,
                "transform": view.transform_text,
            }
        return out
