"""The per-document version chain: structurally-shared frozen arenas.

Every commit (and every lazy arena build) records a
:class:`ChainVersion` in the owning document's :class:`VersionChain`.
Spliced commits share untouched column data with their predecessor
(payload strings and attribute tuples by reference, whole columns for
renames — see :func:`repro.xmltree.arena.splice`), so keeping the last
few versions resident is cheap, and ``pin(version=N)`` time-travel
reads land on a chain entry instead of failing.

The chain carries its own leaf lock: it is recorded into under the
owning document's lock on the write path, but read by ``stat``/metrics
paths that must not contend with commits.

:class:`CommitDelta` is the commit path's receipt — what
``ViewStore.commit_delta`` returns and the ``store.commit.delta.*``
metrics and the service's memo re-keying consume.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set

__all__ = ["ChainVersion", "CommitDelta", "VersionChain", "sharing_stats"]


@dataclass(frozen=True)
class ChainVersion:
    """One frozen arena pinned into a document's version chain.

    ``kind`` records how the arena came to be: ``"load"`` (first
    freeze), ``"rebuild"`` (re-freeze after a destructive fallback
    commit) or ``"splice"`` (O(delta) derivation from the previous
    entry).  ``uid`` is the process-unique arena id snapshot caches
    key on.
    """

    version: int
    uid: int
    arena: Any
    kind: str
    touched_nodes: int = 0


@dataclass(frozen=True)
class CommitDelta:
    """The receipt of one commit: what changed, how it was applied,
    and what the delta-scoped invalidation managed to keep.

    ``labels`` is the conservative delta label set (every element
    label inside a touched range, introduced by a segment, or on an
    attach point's ancestor chain) for spliced commits; ``None`` when
    the commit fell back to a destructive rebuild and nothing can be
    proven about its extent.  ``entries == 0`` marks a no-op commit:
    nothing was staged, the version did not move, no cache was touched.
    """

    doc_name: str
    old_version: int
    new_version: int
    old_uid: int
    new_uid: int
    spliced: bool
    entries: int
    patches: int = 0
    touched_nodes: int = 0
    labels: Optional[FrozenSet[str]] = None
    results_kept: int = 0
    results_dropped: int = 0
    mats_kept: int = 0
    mats_dropped: int = 0


class VersionChain:
    """A bounded, newest-last sequence of :class:`ChainVersion`."""

    # guarded-by[_entries]: self._lock

    def __init__(self, limit: int = 8) -> None:
        if limit < 1:
            raise ValueError(f"chain limit must be positive, got {limit}")
        self.limit = limit  # immutable after construction
        self._entries: List[ChainVersion] = []
        self._lock = threading.Lock()

    def record(self, entry: ChainVersion) -> None:
        """Append (or replace, for a re-freeze of the same version)
        and trim to the retention limit, oldest first."""
        with self._lock:
            if self._entries and self._entries[-1].version == entry.version:
                self._entries[-1] = entry
            else:
                self._entries = [
                    kept for kept in self._entries if kept.version != entry.version
                ]
                self._entries.append(entry)
            while len(self._entries) > self.limit:
                self._entries.pop(0)

    def find(self, version: int) -> Optional[ChainVersion]:
        with self._lock:
            for entry in self._entries:
                if entry.version == version:
                    return entry
            return None

    def latest(self) -> Optional[ChainVersion]:
        with self._lock:
            return self._entries[-1] if self._entries else None

    def versions(self) -> List[int]:
        """Resident version numbers, oldest first."""
        with self._lock:
            return [entry.version for entry in self._entries]

    def snapshot(self) -> List[ChainVersion]:
        """A point-in-time copy of the chain (oldest first)."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def sharing_stats(entries: List[ChainVersion]) -> Dict[str, Any]:
    """Shared vs owned byte accounting across consecutive chain entries.

    A column (or payload string) in entry *k* counts as **shared**
    when the identical object already appears in entry *k-1* — the
    structural-sharing guarantee ``repro store stat`` surfaces.  The
    first entry is all owned by definition.  ``per_version`` carries
    the same split per entry, oldest first.
    """
    shared = 0
    owned = 0
    per_version: List[Dict[str, int]] = []
    prev: Optional[Any] = None
    for entry in entries:
        arena = entry.arena
        entry_shared = 0
        entry_owned = 0
        prev_cols: Set[int] = set()
        prev_strings: Set[int] = set()
        prev_tuples: Set[int] = set()
        if prev is not None:
            prev_cols = {
                id(prev.sym), id(prev.parent), id(prev.end),
                id(prev.payload), id(prev.attrs),
            }
            for value in prev.payload:
                if value is not None:
                    prev_strings.add(id(value))
            for flat in prev.attrs.values():
                prev_tuples.add(id(flat))
        for column in (arena.sym, arena.parent, arena.end, arena.payload, arena.attrs):
            size = sys.getsizeof(column)
            if id(column) in prev_cols:
                entry_shared += size
            else:
                entry_owned += size
        seen: Set[int] = set()
        for value in arena.payload:
            if value is None or id(value) in seen:
                continue
            seen.add(id(value))
            size = sys.getsizeof(value)
            if id(value) in prev_strings:
                entry_shared += size
            else:
                entry_owned += size
        for flat in arena.attrs.values():
            size = sys.getsizeof(flat)
            if id(flat) in prev_tuples:
                entry_shared += size
            else:
                entry_owned += size
        shared += entry_shared
        owned += entry_owned
        per_version.append(
            {
                "version": entry.version,
                "shared_bytes": entry_shared,
                "owned_bytes": entry_owned,
            }
        )
        prev = arena
    return {"shared_bytes": shared, "owned_bytes": owned, "per_version": per_version}
