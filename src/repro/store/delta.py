"""Delta derivation for incremental commits.

The commit fast path: run each staged update's selecting automaton over
the current frozen arena, turn the matches into splice patches
(:func:`repro.xmltree.arena.splice`), and derive the next frozen
version without touching the Node tree or rebuilding columns — O(delta)
work instead of O(document).

Alongside the patches this module computes the **delta label set**: a
conservative superset of every element label whose presence, absence,
content or position the commit may have changed — labels inside removed
ranges, labels a segment introduces, rename sources/targets, and the
labels on each attach point's ancestor chain (a result subtree that
*contains* a patch is reachable only through those).  Delta-scoped
invalidation keeps a cached result whose query provably mentions none
of them (:func:`query_labels` / :func:`transform_labels` — ``None``
means "unanalyzable, assume affected").

A commit that cannot be expressed as a splice — an unsupported
selector, or a delta spanning most of the document — raises
:class:`DeltaUnsupported` and the store falls back to the destructive
rebuild path.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Optional

from repro.automata.arena_run import select_indices
from repro.updates.ops import Update
from repro.xmltree.arena import FrozenDocument, freeze_segment, rename_splice, splice
from repro.xpath.ast import (
    AndQual,
    CmpQual,
    LabelQual,
    NotQual,
    OrQual,
    Path,
    PathQual,
    TrueQual,
)
from repro.xquery import ast as xq

__all__ = [
    "DeltaUnsupported",
    "SpliceOutcome",
    "apply_entries_spliced",
    "query_labels",
    "ranges_swallowed_by",
    "transform_labels",
]

#: Exceptions the selecting/compile machinery raises on inputs it does
#: not support over arenas (mismatched symbol tables, unsupported
#: qualifier shapes).  Anything else is a real bug and must surface.
_COMPILE_ERRORS = (ValueError, KeyError, NotImplementedError)


class DeltaUnsupported(Exception):
    """This commit cannot be applied as a splice; fall back to the
    destructive rebuild path."""


class SpliceOutcome:
    """What :func:`apply_entries_spliced` produced.

    ``ranges`` is the patch list ``[(kind, start, stop, attach), …]``
    against ``base_arena`` — populated only for single-entry commits
    (multi-entry patch positions refer to intermediate arenas), where
    it feeds the materialization swallow test.
    """

    __slots__ = (
        "arena", "base_arena", "labels", "touched_nodes", "patches",
        "entries", "ranges",
    )

    def __init__(self, arena, base_arena, labels, touched_nodes, patches,
                 entries, ranges):
        self.arena = arena
        self.base_arena = base_arena
        self.labels = labels
        self.touched_nodes = touched_nodes
        self.patches = patches
        self.entries = entries
        self.ranges = ranges


def _segment_for(update: Update, symbols):
    """The update's constant content as a splice segment, cached on the
    update object (updates live in the compiled cache, so the segment
    is frozen once per distinct transform text per symbol table)."""
    cached = getattr(update, "_splice_segment", None)
    if cached is not None and cached.symbols is symbols:
        return cached
    segment = freeze_segment(update.content, symbols)
    update._splice_segment = segment
    return segment


def _chain_labels(arena: FrozenDocument, index: int, labels: set, seen: set) -> None:
    """Add the labels on the ancestor chain of *index* (inclusive)."""
    sym = arena.sym
    parent = arena.parent
    strings = arena.symbols.strings
    c = index
    while c >= 0 and c not in seen:
        seen.add(c)
        s = sym[c]
        if s >= 0:
            labels.add(strings[s])
        c = parent[c]


def _topmost(matches: list, end) -> list:
    """Filter doc-order matches to topmost-wins (delete/replace)."""
    top: list = []
    boundary = 0
    for m in matches:
        if m >= boundary:
            top.append(m)
            boundary = end[m]
    return top


def apply_entries_spliced(
    base_arena: FrozenDocument,
    entries: list,
    compiled,
    *,
    max_touched_fraction: float = 0.5,
) -> SpliceOutcome:
    """Apply staged entries to *base_arena* by splicing, sequentially
    (entry *i+1* selects against entry *i*'s result, matching the
    destructive commit's semantics).  Raises :class:`DeltaUnsupported`
    when any entry cannot be expressed as a splice or the accumulated
    delta spans most of the document (a root-spanning delta gains
    nothing over a rebuild and would fragment sharing)."""
    arena = base_arena
    labels: set = set()
    touched = 0
    patch_count = 0
    ranges: Optional[list] = [] if len(entries) == 1 else None
    budget = max(1, int(len(base_arena) * max_touched_fraction))
    for entry in entries:
        update = entry.transform.update
        try:
            nfa = compiled.selecting_nfa_for(update.path)
            matches = select_indices(nfa, arena)
        except _COMPILE_ERRORS as exc:
            raise DeltaUnsupported(f"cannot select delta ranges: {exc}") from exc
        if not matches:
            continue
        sym = arena.sym
        parent = arena.parent
        end = arena.end
        strings = arena.symbols.strings
        seen_chain: set = set()
        kind = update.kind
        if kind == "rename":
            # Point-writes on the symbol column; full column aliasing
            # for everything else.
            touched += len(matches)
            if touched > budget:
                raise DeltaUnsupported("delta spans most of the document")
            labels.add(update.new_label)
            for m in matches:
                labels.add(strings[sym[m]])
                _chain_labels(arena, parent[m], labels, seen_chain)
                if ranges is not None:
                    ranges.append(("rename", m, m + 1, parent[m]))
            patch_count += len(matches)
            arena = rename_splice(arena, matches, update.new_label)
            continue
        if kind == "insert":
            segment = _segment_for(update, arena.symbols)
            patches = [(end[m], end[m], m, segment) for m in matches]
        else:  # delete / replace: topmost match wins
            top = _topmost(matches, end)
            if top and top[0] == 0:
                # The whole document is the delta; nothing to share.
                raise DeltaUnsupported("delta removes the document root")
            segment = _segment_for(update, arena.symbols) if kind == "replace" else None
            patches = [(m, end[m], parent[m], segment) for m in top]
        for start, stop, attach, segment in patches:
            touched += (stop - start) + (len(segment.sym) if segment is not None else 0)
            for s in sym[start:stop]:
                if s >= 0:
                    labels.add(strings[s])
            if segment is not None:
                labels |= segment.labels
            _chain_labels(arena, attach, labels, seen_chain)
            if ranges is not None:
                ranges.append((kind, start, stop, attach))
        if touched > budget:
            raise DeltaUnsupported("delta spans most of the document")
        patch_count += len(patches)
        arena = splice(arena, patches)
    return SpliceOutcome(
        arena, base_arena, frozenset(labels), touched, patch_count,
        len(entries), ranges,
    )


# ----------------------------------------------------------------------
# Label analysis: which labels can a query's answer depend on?
# ----------------------------------------------------------------------


def _path_labels(path: Path, labels: set) -> bool:
    """Collect the element labels a path mentions; ``False`` when the
    path is unanalyzable (a wildcard step can match anything)."""
    for step in path.steps:
        if step.kind == "label":
            labels.add(step.name)
        elif step.kind == "wildcard":
            return False
        # dos/self/attr steps constrain no element label themselves.
        for qual in step.quals:
            if not _qual_labels(qual, labels):
                return False
    return True


def _qual_labels(qual, labels: set) -> bool:
    if isinstance(qual, TrueQual):
        return True
    if isinstance(qual, PathQual):
        return _path_labels(qual.path, labels)
    if isinstance(qual, CmpQual):
        return _path_labels(qual.path, labels)
    if isinstance(qual, LabelQual):
        labels.add(qual.label)
        return True
    if isinstance(qual, (AndQual, OrQual)):
        return _qual_labels(qual.left, labels) and _qual_labels(qual.right, labels)
    if isinstance(qual, NotQual):
        return _qual_labels(qual.operand, labels)
    return False


def _expr_labels(expr, labels: set) -> bool:
    if isinstance(expr, xq.PathFrom):
        return _path_labels(expr.path, labels)
    if isinstance(expr, (xq.VarRef, xq.Literal, xq.EmptySeq, xq.ConstTree)):
        return True
    if isinstance(expr, xq.Sequence):
        return all(_expr_labels(part, labels) for part in expr.parts)
    if isinstance(expr, xq.ElementTemplate):
        return all(_expr_labels(part, labels) for part in expr.parts)
    if isinstance(expr, xq.For):
        return _expr_labels(expr.source, labels) and _expr_labels(expr.body, labels)
    if isinstance(expr, xq.Let):
        return _expr_labels(expr.value, labels) and _expr_labels(expr.body, labels)
    if isinstance(expr, xq.Conditional):
        return (
            _bool_labels(expr.cond, labels)
            and _expr_labels(expr.then, labels)
            and _expr_labels(expr.orelse, labels)
        )
    return False  # TransformedSubtree and anything unknown


def _bool_labels(expr, labels: set) -> bool:
    if isinstance(expr, xq.BoolConst):
        return True
    if isinstance(expr, xq.Exists):
        return _expr_labels(expr.expr, labels)
    if isinstance(expr, xq.Compare):
        return _expr_labels(expr.left, labels) and _expr_labels(expr.right, labels)
    if isinstance(expr, (xq.BoolAnd, xq.BoolOr)):
        return _bool_labels(expr.left, labels) and _bool_labels(expr.right, labels)
    if isinstance(expr, xq.BoolNot):
        return _bool_labels(expr.operand, labels)
    if isinstance(expr, xq.QualCheck):
        return _qual_labels(expr.qual, labels)
    return False


def query_labels(user_query) -> Optional[frozenset]:
    """Every element label the user query's answer can depend on, or
    ``None`` when the query is unanalyzable (wildcards, unknown nodes).

    Soundness against a delta label set: a committed delta can change
    this query's answer only by changing a node whose label — or one
    of whose ancestors' labels, all of which the delta set includes via
    the attach chains — the query mentions.  Disjoint sets therefore
    prove the cached answer (including the subtrees it serialized, any
    patch inside which has an ancestor chain in the delta set) is
    still exact.
    """
    labels: set = set()
    if _expr_labels(user_query.core(), labels):
        return frozenset(labels)
    return None


def transform_labels(transform) -> Optional[frozenset]:
    """Every element label that decides *where* a transform applies,
    plus any label it introduces; ``None`` when unanalyzable."""
    labels: set = set()
    if not _path_labels(transform.path, labels):
        return None
    update = transform.update
    if update.kind == "rename":
        labels.add(update.new_label)
    elif update.kind in ("insert", "replace"):
        stack = [update.content]
        while stack:
            node = stack.pop()
            if node.is_text:
                continue
            labels.add(node.label)
            stack.extend(node.children)
    return frozenset(labels)


# ----------------------------------------------------------------------
# The materialization swallow test
# ----------------------------------------------------------------------


def _qualifier_free(path: Path) -> bool:
    return all(
        all(isinstance(q, TrueQual) for q in step.quals) for step in path.steps
    )


def ranges_swallowed_by(
    transform, base_arena: FrozenDocument, ranges: list, compiled
) -> bool:
    """Is every patched range invisible through *transform*'s output?

    True when the transform deletes (or replaces, with constant
    content) a set of subtrees that swallow every patch.  Restricted to
    **qualifier-free** paths: with label-only matching, a patch strictly
    inside a matched subtree cannot flip any node's match status (label
    chains outside the patch are unchanged), so the transform's output
    over the new version is byte-identical — the materialization and
    every cached result over it survive the commit.  Rename patches
    must fall strictly inside a match (renaming the match root itself
    changes its label chain); inserts may attach to the match root.
    """
    update = transform.update
    if update.kind not in ("delete", "replace"):
        return False
    if not _qualifier_free(update.path):
        return False
    try:
        nfa = compiled.selecting_nfa_for(update.path)
        matches = select_indices(nfa, base_arena)
    except _COMPILE_ERRORS:
        return False
    end = base_arena.end
    top = _topmost(matches, end)
    if not top:
        return False
    for kind, start, stop, attach in ranges:
        anchor = attach if stop == start else start
        i = bisect_right(top, anchor) - 1
        if i < 0:
            return False
        m = top[i]
        limit = end[m]
        if anchor >= limit or stop > limit:
            return False
        if kind in ("rename", "replace") and start == m:
            return False
    return True
