"""Automata for ``X`` expressions: selecting NFA and filtering NFA.

* :mod:`repro.automata.selecting` — the selecting NFA of Section 3.4:
  one state per step of the form ``β1[q1]/…/βk[qk]``; ``next_states()``
  (Fig. 4) drives the top-down transform algorithms.
* :mod:`repro.automata.filtering` — the filtering NFA of Section 5:
  the selecting spine *plus* branch states for every path occurring in
  a qualifier, used by ``bottomUp`` to prune subtrees that can affect
  neither the selecting path nor any needed qualifier.

Run convention (matches Example 6.1): the evaluation root holds the
ε-closure of the start state and consumes no symbol; every other element
consumes its label on entry.  Consequently the root itself is never
selected — correct for this fragment, whose first step is always a
child or descendant-or-self-then-child move away from the root.
"""

from repro.automata.selecting import SelectingNFA, build_selecting_nfa
from repro.automata.filtering import FilteringNFA, build_filtering_nfa
from repro.automata.dfa import LazyDFA
from repro.automata.arena_run import select_indices

__all__ = [
    "FilteringNFA",
    "LazyDFA",
    "SelectingNFA",
    "build_filtering_nfa",
    "build_selecting_nfa",
    "select_indices",
]
