"""Shared automaton core for the selecting and filtering NFAs.

Both automata have the *semi-linear* structure the paper describes: the
only cycles are ``*`` self-loops on descendant (``//``) states.  The
selecting NFA is a single chain ("spine"); the filtering NFA adds
tree-shaped branches for qualifier paths.  This module provides the
state/transition representation and the transition step shared by both.

State sets are plain ``frozenset[int]`` of state ids.  Transitions obey
the construction of Section 3.4 (cf. Fig. 5):

* a ``label``/``wildcard`` state is entered from its predecessor by
  consuming a matching node label;
* a ``dos`` state is entered from its predecessor by ε and carries a
  ``*`` self-loop (it consumes any label and stays);
* ε-closure therefore only ever adds ``dos`` states.

The frozenset machinery below is the *reference* runner (and the form
the paper's figures describe).  The hot strategies run the same
automaton through :meth:`Automaton.dfa` — a lazily-determinized view
(:mod:`repro.automata.dfa`) with interned state sets and memoized
``(set, symbol)`` transitions.  That compilation is only affordable
because of the construction the paper proves: the NFA has O(|p|)
states and its only cycles are the ``*`` self-loops, so the reachable
subset space stays tiny (no exponential subset blow-up) and the lazy
tables converge after a handful of distinct transitions.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.xpath.ast import Qual, TrueQual
from repro.xpath.normalize import BETA_DOS, BETA_LABEL, BETA_WILDCARD, NormStep

#: Test kinds for states.
TEST_START = "start"
TEST_LABEL = BETA_LABEL
TEST_WILDCARD = BETA_WILDCARD
TEST_DOS = BETA_DOS


class State:
    """One automaton state ``(s_i, [q_i])``."""

    __slots__ = ("sid", "test", "name", "qual", "is_final", "out_eps", "out_consume", "nq_id")

    def __init__(self, sid: int, test: str, name: Optional[str], qual: Qual):
        self.sid = sid
        self.test = test
        self.name = name                  # label name for TEST_LABEL states
        self.qual = qual                  # qualifier AST ([true] when trivial)
        self.is_final = False
        self.out_eps: list[int] = []      # ε edges (into dos states)
        self.out_consume: list[int] = []  # label-consuming edges (into label/wildcard states)
        self.nq_id: Optional[int] = None  # normalized-qualifier id (filtering NFA)

    @property
    def has_qualifier(self) -> bool:
        return not isinstance(self.qual, TrueQual)

    def enter_matches(self, label: str) -> bool:
        """Does consuming *label* enter this state (from a predecessor)?"""
        if self.test == TEST_LABEL:
            return self.name == label
        return self.test in (TEST_WILDCARD, TEST_DOS)

    def __repr__(self) -> str:  # pragma: no cover
        shown = self.name if self.test == TEST_LABEL else self.test
        final = ", final" if self.is_final else ""
        return f"State({self.sid}, {shown}{final})"


class Automaton:
    """State table plus the shared transition machinery."""

    def __init__(self):
        self.states: list[State] = []
        self._dfa = None

    def dfa(self):
        """The shared lazy-DFA view of this automaton.

        Built on first use and cached for the automaton's lifetime, so
        every strategy (and every re-run through a prepared statement
        or the store's compiled caches) steps through the same warm
        transition tables.
        """
        if self._dfa is None:
            from repro.automata.dfa import LazyDFA

            self._dfa = LazyDFA(self)
        return self._dfa

    def add_state(self, test: str, name: Optional[str], qual: Qual) -> State:
        state = State(len(self.states), test, name, qual)
        self.states.append(state)
        return state

    @property
    def start(self) -> State:
        return self.states[0]

    def size(self) -> int:
        return len(self.states)

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------

    def epsilon_closure(self, state_ids: Iterable[int]) -> frozenset:
        """All states reachable via ε edges (which only enter dos states)."""
        result = set(state_ids)
        frontier = list(result)
        while frontier:
            sid = frontier.pop()
            for target in self.states[sid].out_eps:
                if target not in result:
                    result.add(target)
                    frontier.append(target)
        return frozenset(result)

    def initial_states(self) -> frozenset:
        """ε-closure of the start state — the set held by the root."""
        return self.epsilon_closure([0])

    def consume(self, state_ids: frozenset, label: str) -> set:
        """One unfiltered transition step: ``S+`` of Fig. 4 line 2.

        For each current state, follow its consuming edges whose target
        test matches *label*; dos states also keep themselves alive
        (the ``*`` self-loop).  No ε-closure, no qualifier filtering.
        """
        result: set = set()
        states = self.states
        for sid in state_ids:
            state = states[sid]
            if state.test == TEST_DOS:
                result.add(sid)  # self-loop consumes any label
            for target_id in state.out_consume:
                if states[target_id].enter_matches(label):
                    result.add(target_id)
        return result

    def next_states(
        self,
        state_ids: frozenset,
        label: str,
        check: Optional[Callable[[Qual], bool]] = None,
    ) -> frozenset:
        """``nextStates()`` of Fig. 4.

        *check* is the ``checkp`` strategy: called with a state's
        qualifier AST, it must report whether the qualifier holds at the
        node being entered.  With ``check=None`` no filtering is applied
        (the filtering-NFA mode used by ``bottomUp``, Fig. 9 lines 1-2).
        """
        entered = self.consume(state_ids, label)
        if check is not None:
            entered = {
                sid
                for sid in entered
                if not self.states[sid].has_qualifier or check(self.states[sid].qual)
            }
        return self.epsilon_closure(entered)

    def final_ids(self) -> frozenset:
        return frozenset(s.sid for s in self.states if s.is_final)

    def has_final(self, state_ids: frozenset) -> bool:
        for sid in state_ids:
            if self.states[sid].is_final:
                return True
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """A Fig. 5/Fig. 8-style textual rendering of the automaton.

        One line per state: id, test, qualifier, finality and outgoing
        edges — handy for debugging rewrites and in teaching examples.
        """
        lines = []
        for state in self.states:
            test = {
                TEST_START: "start",
                TEST_LABEL: f"label {state.name}",
                TEST_WILDCARD: "*",
                TEST_DOS: "// (self-loop on *)",
            }[state.test]
            qual = "true" if not state.has_qualifier else str(state.qual)
            flags = " FINAL" if state.is_final else ""
            edges = []
            for target in state.out_consume:
                edges.append(f"--consume--> s{target}")
            for target in state.out_eps:
                edges.append(f"--ε--> s{target}")
            edge_text = ("  " + ", ".join(edges)) if edges else ""
            lines.append(f"s{state.sid}: {test} [{qual}]{flags}{edge_text}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Construction helper shared by both automata
    # ------------------------------------------------------------------

    def append_chain(self, anchor: State, steps: list[NormStep]) -> State:
        """Append a chain of states for *steps* starting at *anchor*.

        Implements the Section 3.4 construction: label/wildcard steps
        hang off the previous state with a consuming edge; dos steps
        hang off it with an ε edge and loop on themselves.  Returns the
        last state of the chain (``anchor`` itself for empty *steps*).
        """
        current = anchor
        for step in steps:
            if step.beta == BETA_DOS:
                state = self.add_state(TEST_DOS, None, step.qual)
                current.out_eps.append(state.sid)
            else:
                test = TEST_LABEL if step.beta == BETA_LABEL else TEST_WILDCARD
                state = self.add_state(test, step.name, step.qual)
                current.out_consume.append(state.sid)
            current = state
        return current
