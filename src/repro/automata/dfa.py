"""Lazy subset construction over the semi-linear NFAs — the compiled
runtime every strategy steps through.

The paper's ``nextStates(Mp, S, n)`` (Fig. 4) recomputes, at every node,
which states the set ``S`` reaches on the node's label: follow consuming
edges, filter qualifier-bearing entries, ε-close.  That work depends
only on ``(S, label)`` (plus the qualifiers' truth at the node), so the
same transition is recomputed millions of times over a large document.
This module compiles the automaton the classic way — lazily
determinize:

* every distinct state set is **interned** to a dense ``set_id``;
* element labels are interned ints (:mod:`repro.xmltree.symbols`);
* the transition for ``(set_id, symbol)`` is **memoized** on first use
  as a :class:`_Move`: the unconditionally-entered states, the
  qualifier-bearing entered states (with their qualifiers compiled once
  to closures by :mod:`repro.xpath.compiler`), and a table from the
  qualifier outcome bitmask to the resulting ``set_id``;
* ε-closures are precomputed once per NFA state at construction.

Because the NFAs are semi-linear (O(|p|) states, Section 3.4), the
reachable subset space is tiny — typically a few dozen sets even on
multi-million-node documents — so the lazy tables stop growing almost
immediately and the steady-state cost of a transition is one dict hit.

Three run modes cover every consumer:

* :meth:`LazyDFA.step` — the filtered transition of Fig. 4 used by
  ``topDown`` (compiled-closure qualifiers by default, or any
  ``checkp`` strategy such as the ``bottomUp`` annotations);
* :meth:`LazyDFA.step_all` — the unfiltered transition (``check=None``)
  used by ``bottomUp`` and the SAX pass 1 over the filtering NFA;
* :meth:`LazyDFA.tracked_move` — the compiled form of the SAX pass-2 /
  streaming "tracked alive flags" discipline: per ``(set_id, symbol)``
  a feeder bitmask per target state, the cursor positions of
  qualifier-bearing entered states (in the exact sorted-sid order the
  pass-1 cursor assigned), and the ε-propagation pairs, so one
  transition is a handful of int ops on an alive bitmask.

The frozenset entry points on :class:`~repro.automata.core.Automaton`
remain (thin adapters and the reference the property tests compare
against); ``Automaton.dfa()`` hands out one shared ``LazyDFA`` per
automaton, which is what lets prepared statements and the store's
compiled caches reuse fully-warm transition tables across runs.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.xmltree.node import Element
from repro.xmltree.symbols import SymbolTable, global_symbols
from repro.xpath.ast import Qual
from repro.xpath.compiler import compile_qualifier
from repro.automata.core import TEST_DOS, TEST_LABEL, Automaton

__all__ = ["LazyDFA"]

#: checkp signature accepted by :meth:`LazyDFA.step`.
CheckP = Callable[[Qual, Element], bool]


class _Move:
    """Compiled transition for one ``(set_id, symbol)`` pair."""

    __slots__ = ("cond_sids", "cond_quals", "cond_checks", "base", "targets", "target0")

    def __init__(self, cond_sids, cond_quals, cond_checks, base, targets):
        self.cond_sids = cond_sids      # entered states with qualifiers (sorted)
        self.cond_quals = cond_quals    # their Qual ASTs (for checkp strategies)
        self.cond_checks = cond_checks  # their compiled closures
        self.base = base                # unconditionally entered states (frozenset)
        self.targets = targets          # qualifier-outcome mask -> set_id
        self.target0 = targets[0]       # the no-qualifier-passes target (hot slot)


class _TrackedMove:
    """Compiled SAX pass-2 / streaming transition (alive-bitmask form)."""

    __slots__ = ("target", "feeds", "qual_positions", "eps_pairs", "final_mask")

    def __init__(self, target, feeds, qual_positions, eps_pairs, final_mask):
        self.target = target                # unfiltered target set_id
        self.feeds = feeds                  # per target member: source-position bitmask
        self.qual_positions = qual_positions  # cursor-consuming member positions
        self.eps_pairs = eps_pairs          # (src_pos, dst_pos) ε edges, sid order
        self.final_mask = final_mask        # bitmask of final members in target


class LazyDFA:
    """Lazily-materialized DFA over an :class:`Automaton`.

    One instance per automaton (obtained via ``automaton.dfa()``); its
    interned sets and memoized moves are shared by every strategy that
    runs the automaton, and survive as long as the automaton does —
    i.e. as long as the compiled caches keep it.
    """

    # The compiled tables are deliberately read LOCK-FREE; writes go
    # through _grow_lock with publish-last ordering.  Declared rather
    # than guarded so the checker documents (and the report surfaces)
    # exactly which shared state rides on that discipline:
    # unguarded[_sets, final_flags, set_nq, set_qual_positions, _final_masks]: grow-only parallel tables; a set_id is published into _ids only after its row in every table is complete (publish-last under _grow_lock), so lock-free readers always see complete facts
    # unguarded[_ids, _moves, _tracked]: grow-only dicts with idempotent inserts; two threads compiling the same entry write equivalent values (last write wins, both valid)
    # unguarded[_arena_checks]: built once under _grow_lock (double-checked locking); immutable after publication
    # unguarded[moves_compiled, tracked_compiled]: stats-only tallies; a lost increment under contention skews introspection, never correctness

    def __init__(self, automaton: Automaton, symbols: Optional[SymbolTable] = None):
        self.nfa = automaton
        self.symbols = symbols if symbols is not None else global_symbols()
        states = automaton.states
        count = len(states)
        # Per-NFA-state facts, computed once.
        self._closure = [
            tuple(sorted(automaton.epsilon_closure([sid]))) for sid in range(count)
        ]
        self._is_dos = [s.test == TEST_DOS for s in states]
        self._label_sym = [
            self.symbols.intern(s.name) if s.test == TEST_LABEL else -1
            for s in states
        ]
        self._has_qual = [s.has_qualifier for s in states]
        self._checks = [
            compile_qualifier(s.qual) if s.has_qualifier else None for s in states
        ]
        # Arena twins of the compiled qualifier closures (fn(arena, i)),
        # built on first arena run — Node-only consumers never pay.
        self._arena_checks: Optional[list] = None
        self._quals = [s.qual for s in states]
        self._final = [s.is_final for s in states]
        self._nq = [s.nq_id for s in states]
        # Interned state sets and their per-set facts.
        self._sets: list[tuple] = []          # set_id -> sorted member tuple
        self._ids: dict[frozenset, int] = {}
        self.final_flags: list[bool] = []     # set_id -> contains a final state
        self.set_nq: list[tuple] = []         # set_id -> nq ids in sorted-sid order
        self.set_qual_positions: list[tuple] = []  # member positions w/ qualifiers
        self._final_masks: list[int] = []     # set_id -> bitmask of final members
        self._moves: list[dict] = []          # set_id -> {symbol: _Move}
        self._tracked: list[dict] = []        # set_id -> {symbol: _TrackedMove}
        # Direct view of the symbol table's label -> id dict (grow-only,
        # so sharing the reference is safe): the hot loops resolve a
        # label with one dict hit instead of a method call.
        self._sym_ids = self.symbols._ids
        # Guards the parallel per-set tables: one automaton (and hence
        # one LazyDFA) is shared by every strategy and every store
        # query, and the store runs queries concurrently.  Reads stay
        # lock-free — a set_id is published into _ids only after all of
        # its per-set facts are in place.
        self._grow_lock = threading.Lock()
        self.moves_compiled = 0
        self.tracked_compiled = 0
        self.empty_id = self.intern_set(frozenset())
        self.initial_id = self.intern_set(automaton.initial_states())

    # ------------------------------------------------------------------
    # State-set interning
    # ------------------------------------------------------------------

    def intern_set(self, members) -> int:
        """The dense id of a state set (interning it on first sight)."""
        key = members if isinstance(members, frozenset) else frozenset(members)
        found = self._ids.get(key)
        if found is not None:
            return found
        with self._grow_lock:
            found = self._ids.get(key)
            if found is not None:
                return found
            set_id = len(self._sets)
            ordered = tuple(sorted(key))
            self._sets.append(ordered)
            self.final_flags.append(any(self._final[sid] for sid in ordered))
            self.set_nq.append(
                tuple(self._nq[sid] for sid in ordered if self._nq[sid] is not None)
            )
            self.set_qual_positions.append(
                tuple(pos for pos, sid in enumerate(ordered) if self._has_qual[sid])
            )
            self._final_masks.append(
                sum(1 << pos for pos, sid in enumerate(ordered) if self._final[sid])
            )
            self._moves.append({})
            self._tracked.append({})
            # Publish last: readers that see the id find complete facts.
            self._ids[key] = set_id
        return set_id

    def members(self, set_id: int) -> tuple:
        """The NFA state ids of the set, sorted ascending."""
        return self._sets[set_id]

    def frozen(self, set_id: int) -> frozenset:
        """The set as the frozenset the NFA entry points expect."""
        return frozenset(self._sets[set_id])

    def is_final(self, set_id: int) -> bool:
        """Does the set contain a final state (``selects`` of Fig. 4)?"""
        return self.final_flags[set_id]

    def final_mask(self, set_id: int) -> int:
        return self._final_masks[set_id]

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def _compile_move(self, set_id: int, sym: int) -> _Move:
        """Materialize the transition table entry for ``(set_id, sym)``."""
        states = self.nfa.states
        label_sym = self._label_sym
        entered: set = set()
        for sid in self._sets[set_id]:
            if self._is_dos[sid]:
                entered.add(sid)  # the '*' self-loop consumes any label
            for target in states[sid].out_consume:
                target_sym = label_sym[target]
                if target_sym == sym or target_sym == -1:
                    entered.add(target)  # label match, wildcard, or dos
        cond = tuple(sorted(sid for sid in entered if self._has_qual[sid]))
        base = frozenset(sid for sid in entered if not self._has_qual[sid])
        move = _Move(
            cond,
            tuple(self._quals[sid] for sid in cond),
            tuple(self._checks[sid] for sid in cond),
            base,
            {0: self._close_and_intern(base)},
        )
        self._moves[set_id][sym] = move
        self.moves_compiled += 1
        return move

    def _close_and_intern(self, keep) -> int:
        result: set = set()
        closure = self._closure
        for sid in keep:
            result.update(closure[sid])
        return self.intern_set(frozenset(result))

    def _target_for_mask(self, move: _Move, mask: int) -> int:
        target = move.targets.get(mask)
        if target is None:
            passing = [sid for bit, sid in enumerate(move.cond_sids) if mask >> bit & 1]
            target = self._close_and_intern(move.base.union(passing))
            move.targets[mask] = target
        return target

    def apply_move(self, move: _Move, node: Element, checkp: Optional[CheckP]) -> int:  # hot-path
        """Decide a qualifier-bearing move at *node* (the slow half of
        :meth:`step`, exposed so hot loops can inline the fast half)."""
        mask = 0
        if checkp is None:
            for bit, check in enumerate(move.cond_checks):
                if check(node):
                    mask |= 1 << bit
        else:
            for bit, qual in enumerate(move.cond_quals):
                if checkp(qual, node):
                    mask |= 1 << bit
        if not mask:
            return move.target0
        return self._target_for_mask(move, mask)

    # hot-path
    def step(
        self,
        set_id: int,
        label: str,
        node: Element,
        checkp: Optional[CheckP] = None,
    ) -> int:
        """``nextStates`` with qualifier filtering at *node* (Fig. 4).

        With ``checkp=None`` qualifiers are decided by the compiled
        closures (the native engine); otherwise ``checkp(qual, node)``
        is consulted per qualifier-bearing entered state — the hook the
        TD-BU annotations plug into.
        """
        # An unseen label resolves to sym None, misses the move table,
        # and takes the compile path (which interns it properly).
        move = self._moves[set_id].get(self._sym_ids.get(label))
        if move is None:
            move = self._compile_move(set_id, self.symbols.intern(label))
        if not move.cond_sids:
            return move.target0
        return self.apply_move(move, node, checkp)

    def hot_path(self) -> tuple:
        """The ``(resolve_symbol, move_tables, compile_move)`` triple
        for consumers that inline :meth:`step`'s fast half in a
        per-node loop (see ``topdown_subtree``): resolve the label,
        index the move table, fall back to ``compile_move(set_id,
        symbols.intern(label))`` on a miss.  Owning this tuple here
        keeps the internal representation private to this module.
        """
        return self._sym_ids.get, self._moves, self._compile_move

    # ------------------------------------------------------------------
    # The arena (columnar) mode
    # ------------------------------------------------------------------

    def ensure_arena_checks(self) -> list:
        """The per-NFA-state arena qualifier closures, built once on
        first use (see :mod:`repro.xpath.arena_compiler`)."""
        checks = self._arena_checks
        if checks is None:
            from repro.xpath.arena_compiler import compile_qualifier_arena

            with self._grow_lock:
                if self._arena_checks is None:
                    self._arena_checks = [
                        compile_qualifier_arena(s.qual, self.symbols)
                        if s.has_qualifier
                        else None
                        for s in self.nfa.states
                    ]
            checks = self._arena_checks
        return checks

    def apply_move_arena(self, move: _Move, arena, i: int) -> int:  # hot-path
        """Decide a qualifier-bearing move at arena index *i* — the
        columnar twin of :meth:`apply_move` (compiled arena closures
        instead of Node closures; same outcome-bitmask targets)."""
        checks = self._arena_checks
        if checks is None:
            checks = self.ensure_arena_checks()
        mask = 0
        for bit, sid in enumerate(move.cond_sids):
            if checks[sid](arena, i):
                mask |= 1 << bit
        if not mask:
            return move.target0
        return self._target_for_mask(move, mask)

    def step_sym(self, set_id: int, sym: int, arena, i: int) -> int:  # hot-path
        """``nextStates`` keyed directly by an interned symbol id — the
        transition the arena runners take (no label string in sight).
        """
        move = self._moves[set_id].get(sym)
        if move is None:
            move = self._compile_move(set_id, sym)
        if not move.cond_sids:
            return move.target0
        return self.apply_move_arena(move, arena, i)

    def arena_hot_path(self) -> tuple:
        """``(move_tables, compile_move, apply_move_arena)`` for the
        arena runners' inlined per-index loops (the columnar analogue
        of :meth:`hot_path`; symbol resolution disappears because the
        arena's ``sym`` column already holds interned ids)."""
        self.ensure_arena_checks()
        return self._moves, self._compile_move, self.apply_move_arena

    def step_all(self, set_id: int, label: str) -> int:
        """The unfiltered transition (``check=None``): qualifiers kept."""
        move = self._moves[set_id].get(self._sym_ids.get(label))
        if move is None:
            move = self._compile_move(set_id, self.symbols.intern(label))
        if not move.cond_sids:
            return move.target0
        return self._target_for_mask(move, (1 << len(move.cond_sids)) - 1)

    # ------------------------------------------------------------------
    # The tracked-alive mode (SAX pass 2, streaming select)
    # ------------------------------------------------------------------

    def tracked_move(self, set_id: int, label: str) -> _TrackedMove:  # hot-path
        """The compiled pass-2 transition for ``(set_id, label)``.

        The caller holds ``(set_id, alive-bitmask)``; applying the move
        is: OR the feeder masks, AND the cursor values into the
        qualifier positions, propagate ε pairs, test ``final_mask``.
        """
        move = self._tracked[set_id].get(self._sym_ids.get(label))
        if move is None:
            sym = self.symbols.intern(label)
            move = self._compile_tracked(set_id, sym)
            self._tracked[set_id][sym] = move
        return move

    def _compile_tracked(self, set_id: int, sym: int) -> _TrackedMove:
        states = self.nfa.states
        label_sym = self._label_sym
        source = self._sets[set_id]
        target_id = self.step_all(set_id, self.symbols.strings[sym])
        target = self._sets[target_id]
        dst_pos = {sid: pos for pos, sid in enumerate(target)}
        feeds = [0] * len(target)
        entered: set = set()
        for src_pos, sid in enumerate(source):
            if self._is_dos[sid]:
                feeds[dst_pos[sid]] |= 1 << src_pos
                entered.add(sid)
            for tgt in states[sid].out_consume:
                tgt_sym = label_sym[tgt]
                if tgt_sym == sym or tgt_sym == -1:
                    feeds[dst_pos[tgt]] |= 1 << src_pos
                    entered.add(tgt)
        qual_positions = tuple(
            dst_pos[sid] for sid in sorted(entered) if self._has_qual[sid]
        )
        eps_pairs = tuple(
            (dst_pos[sid], dst_pos[tgt])
            for sid in target
            for tgt in states[sid].out_eps
            if tgt in dst_pos
        )
        move = _TrackedMove(
            target_id, tuple(feeds), qual_positions, eps_pairs,
            self._final_masks[target_id],
        )
        self.tracked_compiled += 1
        return move

    def full_mask(self, set_id: int) -> int:
        """The all-alive bitmask for a set (the root's initial state)."""
        return (1 << len(self._sets[set_id])) - 1

    def root_tracked(self, ld: list, cursor: int) -> tuple:
        """The tracked state at the document root (which consumes no
        symbol): all initial members alive, with qualifier-bearing ones
        consuming their pass-1 cursor ids.  Returns
        ``(set_id, alive, cursor)``."""
        set_id = self.initial_id
        alive = (1 << len(self._sets[set_id])) - 1
        for pos in self.set_qual_positions[set_id]:
            if not ld[cursor]:
                alive &= ~(1 << pos)
            cursor += 1
        return set_id, alive, cursor

    # hot-path
    def advance_tracked(
        self, set_id: int, alive: int, label: str, ld: list, cursor: int
    ) -> tuple:
        """One full pass-2 transition: feeds, cursor-qualifier clearing
        (consuming ids exactly as pass 1 assigned them), ε propagation.

        Returns ``(set_id, alive, cursor, selected)`` — the single
        entry point both the SAX pass 2 and the streaming selector run
        on, so the alive/cursor discipline lives in one place.
        """
        move = self.tracked_move(set_id, label)
        new_alive = 0
        bit = 1
        for feed in move.feeds:
            if alive & feed:
                new_alive |= bit
            bit <<= 1
        for pos in move.qual_positions:
            if not ld[cursor]:
                new_alive &= ~(1 << pos)
            cursor += 1
        for src, dst in move.eps_pairs:
            if new_alive >> src & 1:
                new_alive |= 1 << dst
        return move.target, new_alive, cursor, bool(new_alive & move.final_mask)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Table sizes — what ``explain()`` surfaces as the compiled
        runtime's footprint (and what the zero-recompilation assertions
        in ``benchmarks/bench_dfa.py`` watch)."""
        return {
            "nfa_states": len(self.nfa.states),
            "sets": len(self._sets),
            "moves": self.moves_compiled,
            "tracked_moves": self.tracked_compiled,
            "symbols": len(self.symbols),
        }
