"""The selecting NFA ``Mp`` of an ``X`` expression (Section 3.4).

Built from the step form ``β1[q1]/…/βk[qk]``: a start state
``(s0, [true])`` plus one state ``(si, [qi])`` per step, the last being
final.  The construction runs in O(|p|) and the automaton has O(|p|)
states — the features the paper highlights over tree automata and AFA.

Example (Fig. 5): ``//part[q1]//part[q2]`` yields::

    (s0,[true]) --ε--> (s1,[true])⟲* --part--> (s2,[q1])
                --ε--> (s3,[true])⟲* --part--> (s4,[q2])  [final]
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.xmltree.node import Element
from repro.xpath.ast import Path, Qual, TrueQual
from repro.xpath.evaluator import eval_qualifier
from repro.xpath.normalize import normalize_steps
from repro.automata.core import TEST_START, Automaton


class SelectingNFA(Automaton):
    """``Mp``: decides, node by node, membership in ``r[[p]]``."""

    def __init__(self, path: Path):
        super().__init__()
        self.path = path
        context_qual, steps = normalize_steps(path)
        self.context_qual: Qual = context_qual
        self.norm_steps = steps
        self.add_state(TEST_START, None, context_qual)
        last = self.append_chain(self.start, steps)
        if last is self.start:
            raise ValueError(
                "the empty path selects the context root itself; transform "
                "updates apply below the root, so p must have at least one step"
            )
        last.is_final = True
        self.final_id = last.sid

    # ------------------------------------------------------------------

    def initial_states_for(self, root: Element) -> frozenset:
        """Initial state set at *root* (which consumes no symbol).

        An empty set results when a context qualifier (``.[q]/…``)
        fails at the root — nothing can be selected.
        """
        if not isinstance(self.context_qual, TrueQual):
            if not eval_qualifier(root, self.context_qual):
                return frozenset()
        return self.initial_states()

    def selects(self, state_ids: frozenset) -> bool:
        """Is the node holding *state_ids* selected by ``p``?

        Valid when *state_ids* was computed with qualifier filtering
        (``next_states(..., check=…)``): then the final state's
        qualifier has already been checked on entry.
        """
        return self.final_id in state_ids

    def make_checker(self, node: Element) -> Callable[[Qual], bool]:
        """The "native engine" ``checkp``: evaluate qualifiers at *node*
        with the reference evaluator (the role Qizx plays in the paper)."""
        return lambda qual: eval_qualifier(node, qual)

    # ------------------------------------------------------------------

    def run_select(self, root) -> list:
        """Select ``r[[p]]`` by running the automaton over the whole tree.

        Mostly a testing/verification entry point — the transform
        algorithms interleave this run with output construction instead
        — but also a fine standalone XPath evaluator.  Runs on the
        shared lazy DFA (:meth:`~repro.automata.core.Automaton.dfa`);
        :meth:`run_select_nfa` is the frozenset reference.
        Returns nodes in document order.

        *root* may be a :class:`~repro.xmltree.arena.FrozenDocument`:
        the run then takes the columnar backend (a pre-order loop over
        the int columns — see :mod:`repro.automata.arena_run`) and
        returns matched pre-order **indices** instead of nodes.
        """
        if not isinstance(root, Element):
            from repro.automata.arena_run import select_indices

            return select_indices(self, root)
        selected: list = []
        initial = self.initial_states_for(root)
        if not initial:
            return selected
        dfa = self.dfa()
        step = dfa.step
        empty_id = dfa.empty_id
        final_flags = dfa.final_flags
        initial_id = dfa.intern_set(initial)
        stack: list[tuple] = [(child, initial_id) for child in reversed(list(root.child_elements()))]
        while stack:
            node, parent_id = stack.pop()
            set_id = step(parent_id, node.label, node)
            if set_id == empty_id:
                continue
            if final_flags[set_id]:
                selected.append(node)
            stack.extend(
                (child, set_id) for child in reversed(list(node.child_elements()))
            )
        return selected

    def run_select_nfa(self, root: Element) -> list:
        """The seed's frozenset run of :meth:`run_select` — the
        reference the DFA property tests compare against."""
        selected: list = []
        initial = self.initial_states_for(root)
        if not initial:
            return selected
        stack: list[tuple] = [(child, initial) for child in reversed(list(root.child_elements()))]
        while stack:
            node, parent_states = stack.pop()
            states = self.next_states(parent_states, node.label, self.make_checker(node))
            if not states:
                continue
            if self.selects(states):
                selected.append(node)
            stack.extend(
                (child, states) for child in reversed(list(node.child_elements()))
            )
        return selected


def build_selecting_nfa(path: Path) -> SelectingNFA:
    """Construct the selecting NFA for an ``X`` path."""
    return SelectingNFA(path)
