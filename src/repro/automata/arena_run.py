"""Arena-native automaton runs: the selecting DFA over pre-order index
ranges.

The Node runners (``run_select``, ``topDown``) spend most of their time
*outside* the automaton — chasing ``Element`` attributes, building
child lists, pushing per-node tuples.  Over a
:class:`~repro.xmltree.arena.FrozenDocument` the same lazy DFA runs as
one pre-order loop with local-variable state:

* the node's symbol id is ``sym[i]`` (already interned — no label
  string, no hash);
* the transition is one dict hit on the memoized move table;
* an empty target set **skips the whole subtree** by jumping
  ``i = end[i]`` — the paper's pruning, now a single int assignment
  over the contiguous pre-order range;
* the only per-node allocation is appending a matched index.

:func:`select_indices` is the shared walk behind the arena paths of
``run_select``, the store's query fast path and the xquery arena
evaluator; :func:`write_arena_transformed` fuses it with the columnar
serializer for the file-to-file transform fast path (untouched
subtrees are emitted — or skipped — as raw index ranges, the arena
form of "simply copied to the result").
"""

from __future__ import annotations

from typing import Optional

from repro.obs import current_profile
from repro.updates.ops import Update
from repro.xmltree.arena import FrozenDocument
from repro.xmltree.serializer import serialize
from repro.xpath.ast import TrueQual

__all__ = [
    "initial_id_for",
    "select_indices",
    "serialize_arena_items",
    "serialize_arena_transformed",
    "write_arena_transformed",
]


def initial_id_for(selecting, arena: FrozenDocument, context: int = 0) -> Optional[int]:
    """The interned initial set id at *context*, or ``None`` when a
    context qualifier (``.[q]/…``) fails there — nothing can match."""
    dfa = selecting.dfa()
    if arena.symbols is not dfa.symbols:
        raise ValueError(
            "arena and automaton intern through different symbol tables; "
            "build both against the same SymbolTable"
        )
    context_qual = selecting.context_qual
    if not isinstance(context_qual, TrueQual):
        from repro.xpath.arena_compiler import compile_qualifier_arena

        check = selecting.__dict__.get("_arena_context_check")
        if check is None:
            check = compile_qualifier_arena(context_qual, dfa.symbols)
            selecting._arena_context_check = check
        if not check(arena, context):
            return None
    return dfa.intern_set(selecting.initial_states())


# hot-path
def select_indices(
    selecting, arena: FrozenDocument, context: int = 0
) -> list:
    """``r[[p]]`` over the arena: pre-order indices of the selected
    nodes in the subtree of *context*, in document order.

    The arena twin of :meth:`~repro.automata.selecting.SelectingNFA.
    run_select` — same automaton, same memoized move tables, ~none of
    the object traffic.

    When an execution profile is active on the calling thread, the
    walk runs through a counting twin of the loop instead
    (:func:`_select_indices_profiled`); one thread-local read is the
    whole cost when it is not, so the plain loop stays untouched.
    """
    profile = current_profile()  # unguarded: one thread-local read is the documented cost of the off path
    if profile is not None:
        return _select_indices_profiled(selecting, arena, context, profile)
    out: list = []
    initial_id = initial_id_for(selecting, arena, context)
    if initial_id is None:
        return out
    dfa = selecting.dfa()
    moves, compile_move, apply_move_arena = dfa.arena_hot_path()
    empty_id = dfa.empty_id
    final_flags = dfa.final_flags
    sym = arena.sym
    end = arena.end
    append = out.append
    limit = end[context]
    # Ancestor stack: sets/ends hold the open chain, top_* mirror the
    # innermost entry so the per-node fast path never indexes [-1].
    sets = [initial_id]
    ends = [limit]
    top_set = initial_id
    top_end = limit
    i = context + 1
    while i < limit:
        if top_end <= i:
            sets.pop()
            ends.pop()
            while ends[-1] <= i:
                sets.pop()
                ends.pop()
            top_set = sets[-1]
            top_end = ends[-1]
        s = sym[i]
        if s < 0:
            i += 1
            continue
        move = moves[top_set].get(s)
        if move is None:
            move = compile_move(top_set, s)
        if move.cond_sids:
            set_id = apply_move_arena(move, arena, i)
        else:
            set_id = move.target0
        if set_id == empty_id:
            i = end[i]  # prune: the whole subtree range, skipped
            continue
        if final_flags[set_id]:
            append(i)
        e = end[i]
        i += 1
        if e > i:
            sets.append(set_id)
            ends.append(e)
            top_set = set_id
            top_end = e
    return out


def _select_indices_profiled(
    selecting, arena: FrozenDocument, context: int, profile
) -> list:
    """The counting twin of :func:`select_indices`: same walk, same
    results (the equivalence is pinned by a test), plus measured
    counts deposited into *profile* once at the end — element nodes
    visited, subtree prunes taken, DFA transitions applied, and the
    lazy transition-table growth this scan paid (``dfa.stats()``
    deltas).  Local int counters keep the per-node cost flat; only the
    final deposit touches the profile object.
    """
    out: list = []
    initial_id = initial_id_for(selecting, arena, context)
    if initial_id is None:
        return out
    dfa = selecting.dfa()
    before = dfa.stats()
    moves, compile_move, apply_move_arena = dfa.arena_hot_path()
    empty_id = dfa.empty_id
    final_flags = dfa.final_flags
    sym = arena.sym
    end = arena.end
    append = out.append
    limit = end[context]
    visited = 0
    pruned = 0
    transitions = 0
    sets = [initial_id]
    ends = [limit]
    top_set = initial_id
    top_end = limit
    i = context + 1
    while i < limit:
        if top_end <= i:
            sets.pop()
            ends.pop()
            while ends[-1] <= i:
                sets.pop()
                ends.pop()
            top_set = sets[-1]
            top_end = ends[-1]
        s = sym[i]
        if s < 0:
            i += 1
            continue
        visited += 1
        move = moves[top_set].get(s)
        if move is None:
            move = compile_move(top_set, s)
        if move.cond_sids:
            set_id = apply_move_arena(move, arena, i)
        else:
            set_id = move.target0
        transitions += 1
        if set_id == empty_id:
            pruned += 1
            i = end[i]
            continue
        if final_flags[set_id]:
            append(i)
        e = end[i]
        i += 1
        if e > i:
            sets.append(set_id)
            ends.append(e)
            top_set = set_id
            top_end = e
    after = dfa.stats()
    profile.add_scan(nodes=visited, pruned=pruned, transitions=transitions)
    profile.add_table_growth(
        sets=after["sets"] - before["sets"],
        moves=after["moves"] - before["moves"],
    )
    return out


# ----------------------------------------------------------------------
# The transform-to-text fast path
# ----------------------------------------------------------------------


def write_arena_transformed(
    arena: FrozenDocument, update: Update, selecting, write
) -> int:
    """Emit the transformed document as compact XML text through
    *write*, straight from the columns — no output tree, no thaw.

    One selecting-DFA walk finds ``r[[p]]`` (:func:`select_indices`),
    then a single pre-order sweep splices the update at the matched
    indices: ``delete``/``replace`` skip the match's contiguous range
    (topmost match wins, exactly the Node convention), ``insert``
    appends the constant content before the closing tag, ``rename``
    swaps the tag name.  Untouched regions stream out as raw ranges.
    Returns the number of (topmost) matches applied.

    Byte-identical to serializing ``transform_topdown`` on the thawed
    tree (asserted by the arena test suite).
    """
    matches = select_indices(selecting, arena)
    kind = update.kind
    content_xml = (
        serialize(update.content) if kind in ("insert", "replace") else ""
    )
    new_label = update.new_label if kind == "rename" else ""
    sym = arena.sym
    end = arena.end
    payload = arena.payload
    attr_map = arena.attrs
    strings = arena.symbols.strings
    from repro.xmltree.serializer import _flat_attr_text, escape_text

    applied = 0
    mi = 0
    n_matches = len(matches)
    closes: list = []
    ends: list = []
    limit = end[0]
    j = 0
    # A deleted range can empty its parent, which must then self-close
    # exactly as the Node serializer would: open tags are held pending
    # and flushed with '>' by the first content, or folded to '<l/>'
    # by a contentless close.
    pending = None

    def emit_close() -> None:
        nonlocal pending
        if pending is not None:
            write(pending + "/>")
            pending = None
            closes.pop()
        else:
            write(closes.pop())

    while j < limit:
        while ends and ends[-1] <= j:
            ends.pop()
            emit_close()
        s = sym[j]
        if s < 0:
            if pending is not None:
                write(pending + ">")
                pending = None
            write(escape_text(payload[j]))
            j += 1
            continue
        matched = mi < n_matches and matches[mi] == j
        if matched:
            mi += 1
            applied += 1
        e = end[j]
        if matched and kind in ("delete", "replace"):
            if kind == "replace":
                if pending is not None:
                    write(pending + ">")
                    pending = None
                write(content_xml)
            # Topmost match wins: skip the subtree range and every
            # match strictly inside it.
            while mi < n_matches and matches[mi] < e:
                mi += 1
            j = e
            continue
        if pending is not None:
            write(pending + ">")
            pending = None
        label = strings[s] if not (matched and kind == "rename") else new_label
        found = attr_map.get(j)
        attrs = _flat_attr_text(found) if found else ""
        if matched and kind == "insert":
            # The match gains a child, so it can no longer self-close.
            write(f"<{label}{attrs}>")
            ends.append(e)
            closes.append(f"{content_xml}</{label}>")
        elif e == j + 1:
            write(f"<{label}{attrs}/>")
        else:
            pending = f"<{label}{attrs}"
            ends.append(e)
            closes.append(f"</{label}>")
        j += 1
    while closes:
        emit_close()
    return applied


def serialize_arena_transformed(
    arena: FrozenDocument, update: Update, selecting
) -> str:
    """:func:`write_arena_transformed` into a returned string."""
    parts: list = []
    write_arena_transformed(arena, update, selecting, parts.append)
    return "".join(parts)


def serialize_arena_items(arena: FrozenDocument, items) -> list:
    """Serialize query-result items to text, straight from the columns.

    The shared tail of every serialized read path (``ViewStore.
    query_serialized``, ``repro query``): an ``int`` item is an arena
    index — its subtree streams out of the pre-order range with no
    thaw; an ``Element`` (a constructed template or a Node-path
    result) takes the Node serializer; literals render as text.
    """
    from repro.xmltree.node import Element
    from repro.xmltree.serializer import serialize, serialize_arena

    out = []
    for item in items:
        if isinstance(item, int):
            out.append(serialize_arena(arena, item))
        elif isinstance(item, Element):
            out.append(serialize(item))
        else:
            out.append(str(item))
    profile = current_profile()
    if profile is not None:
        profile.add_serialize_bytes(sum(len(text) for text in out))
        profile.add_results(len(out))
    return out
