"""The filtering NFA ``Mf`` of an ``X`` expression (Section 5).

``Mf`` extends the selecting spine with *branch* states for every path
occurring in a qualifier (recursively, including paths nested inside
qualifier-path qualifiers), "stripping off the logical connectives".
Its job in ``bottomUp`` is purely structural: a node with an empty
(unfiltered) state set can contribute neither to the selecting path nor
to any qualifier that will ever be needed, so its subtree is pruned.

Each spine state with a non-trivial qualifier is annotated with the
normalized (Section-5 normal form) expression of that qualifier in a
shared :class:`~repro.xpath.normalize.QualifierSpace`; ``bottomUp``
evaluates the space's expressions with ``QualDP`` and the transform's
selection decisions read them back through ``state.nq_id``.

Cf. Fig. 8: for ``//part[pname='keyboard']//part[¬ supplier/sname='HP'
∧ ¬ supplier/price<15]`` the spine is as in Fig. 5 and branches hang
off the two ``part`` states for ``pname``, ``supplier/sname`` and
``supplier/price``.
"""

from __future__ import annotations

from repro.xpath.ast import (
    AndQual,
    CmpQual,
    NotQual,
    OrQual,
    Path,
    PathQual,
    Qual,
    TrueQual,
)
from repro.xpath.normalize import QualifierSpace, normalize_steps
from repro.automata.core import TEST_START, Automaton, State


class FilteringNFA(Automaton):
    """``Mf``: tracks which nodes may matter to selection or qualifiers."""

    def __init__(self, path: Path):
        super().__init__()
        self.path = path
        self.space = QualifierSpace()
        context_qual, steps = normalize_steps(path)
        self.context_qual = context_qual
        self.add_state(TEST_START, None, context_qual)
        self._annotate(self.start)  # context qualifier (.[q]/…), if any
        self._attach_qual_branches(self.start, context_qual)
        previous = self.start
        spine: list[State] = []
        for step in steps:
            last = self.append_chain(previous, [step])
            spine.append(last)
            self._annotate(last)
            self._attach_qual_branches(last, step.qual)
            previous = last
        if not spine:
            raise ValueError("the empty path has no filtering NFA")
        spine[-1].is_final = True
        self.final_id = spine[-1].sid
        self.spine_ids = frozenset(s.sid for s in spine) | {0}

    # ------------------------------------------------------------------

    def _annotate(self, state: State) -> None:
        """Record the normalized form of the state's qualifier."""
        if state.has_qualifier:
            state.nq_id = self.space.normalize_qual(state.qual).nq_id

    def _attach_qual_branches(self, anchor: State, qual: Qual) -> None:
        """Add branch chains for every path inside *qual* (recursively)."""
        for path in _paths_of(qual):
            self._attach_path_branch(anchor, path)

    def _attach_path_branch(self, anchor: State, path: Path) -> None:
        steps = list(path.steps)
        if steps and steps[-1].kind == "attr":
            steps = steps[:-1]  # attributes live on the node the prefix reaches
        current = anchor
        for step in steps:
            if step.kind == "self":
                # ε[q]/… — the nested qualifier is evaluated at the same
                # node; only its own paths extend the branch.
                for q in step.quals:
                    self._attach_qual_branches(current, q)
                continue
            if step.kind == "attr":
                raise ValueError("attribute steps are final-only in qualifier paths")
            _, norm = normalize_steps(Path((step.with_quals(()),)))
            current = self.append_chain(current, norm)
            for q in step.quals:
                self._attach_qual_branches(current, q)

    # ------------------------------------------------------------------

    def needed_nq_ids(self, state_ids: frozenset) -> list:
        """Normalized-qualifier ids needed at a node holding *state_ids*
        (``LQ(S)`` restricted to top-level qualifiers; QualDP evaluates
        sub-expressions implicitly in interned order).

        The compiled runtime precomputes exactly this list per interned
        state set (``dfa().set_nq``), which is what the SAX pass-1
        cursor discipline reads; this frozenset form remains as the
        reference the property tests compare against."""
        out = []
        for sid in sorted(state_ids):
            nq_id = self.states[sid].nq_id
            if nq_id is not None:
                out.append(nq_id)
        return out


def build_filtering_nfa(path: Path) -> FilteringNFA:
    """Construct the filtering NFA for an ``X`` path."""
    return FilteringNFA(path)


def _paths_of(qual: Qual) -> list:
    """All qualifier paths directly mentioned by *qual* (connectives
    stripped; nested paths are handled during branch attachment)."""
    if isinstance(qual, TrueQual):
        return []
    if isinstance(qual, PathQual):
        return [qual.path]
    if isinstance(qual, CmpQual):
        return [qual.path] if qual.path.steps else []
    if isinstance(qual, (AndQual, OrQual)):
        return _paths_of(qual.left) + _paths_of(qual.right)
    if isinstance(qual, NotQual):
        return _paths_of(qual.operand)
    return []  # LabelQual and friends carry no paths
