"""A thread-safe LRU cache with zero package dependencies.

Shared by the store's compiled-artifact caches and the engine's
planner/prepared layers.  It lives at the package root (rather than in
``repro.store.cache``, which re-exports it for compatibility) to keep
the layering one-directional: the store imports the engine's planner,
so shared infrastructure the engine needs must never live inside the
store package.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

_MISSING = object()


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    Thread-safe: lookups and insertions take an internal lock, and
    :meth:`get_or_compute` runs the factory *outside* the lock so a slow
    parse never blocks unrelated readers (two threads may then compute
    the same value once each; the cache stays consistent either way).
    """

    # guarded-by[hits, misses, evictions, _data]: self._lock

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize  # immutable after construction
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Any, default: Any = None) -> Any:
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def get_or_compute(self, key: Any, factory: Callable[[], Any]) -> Any:
        value = self.get(key, _MISSING)
        if value is _MISSING:
            value = factory()
            self.put(key, value)
        return value

    def invalidate(self, predicate: Optional[Callable[[Any], bool]] = None) -> int:
        """Drop every entry (or those whose *key* satisfies *predicate*);
        returns the number of entries removed."""
        with self._lock:
            if predicate is None:
                dropped = len(self._data)
                self._data.clear()
                return dropped
            doomed = [key for key in self._data if predicate(key)]
            for key in doomed:
                del self._data[key]
            return len(doomed)

    def rekey(self, mapper: Callable[[Any], Optional[Any]]) -> Tuple[int, int]:
        """Rewrite every key through *mapper* in one atomic pass.

        *mapper* returns the key unchanged (keep), a new key (move the
        entry — recency order is preserved), or ``None`` (drop the
        entry).  This is what delta-scoped commit invalidation uses to
        carry provably-unaffected results forward to the new version:
        version-stamped keys cannot be kept in place, they must move.
        Returns ``(moved, dropped)``.
        """
        with self._lock:
            moved = 0
            dropped = 0
            out: "OrderedDict[Any, Any]" = OrderedDict()
            for key, value in self._data.items():
                new_key = mapper(key)
                if new_key is None:
                    dropped += 1
                    continue
                if new_key != key:
                    moved += 1
                out[new_key] = value
            self._data = out
            return moved, dropped

    def values(self) -> List[Any]:
        """A point-in-time list of the cached values (most-recently
        used last) — what aggregate metrics probes iterate over."""
        with self._lock:
            return list(self._data.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._data

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
