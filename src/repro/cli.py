"""Command-line interface: transform documents, compose queries,
generate workload data, inspect automata, and run the view store.

::

    python -m repro transform -q 'transform copy $a := doc("f") modify \\
        do delete $a//price return $a' -i in.xml -o out.xml --method sax
    python -m repro compose -t '<transform query>' -u 'for $x in … return $x' -i in.xml
    python -m repro generate --factor 0.1 -o xmark.xml
    python -m repro explain -p '//part[pname = "kb"]//part'
    python -m repro store load -n db -i catalog.xml
    python -m repro store defview -n public -b db -t '<transform query>'
    python -m repro store query -n public -u 'for $x in … return $x'
    python -m repro store commit -n db -t '<transform query>'
    python -m repro store stat

Errors from user input (query syntax, unsupported paths, missing
files, unknown store names) exit with status 2 and a one-line
``repro: …`` message on stderr — no tracebacks at the CLI boundary.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__
from repro.automata import build_filtering_nfa, build_selecting_nfa
from repro.compose import compose as compose_queries
from repro.compose import evaluate_composed
from repro.store.state import open_store, save_store
from repro.transform import (
    parse_transform_query,
    transform_copy_update,
    transform_naive,
    transform_sax_file,
    transform_topdown,
    transform_twopass,
)
from repro.xmark.generator import write_xmark_file
from repro.xmltree import Element, parse_file, serialize, write_file
from repro.xpath import parse_xpath
from repro.xquery import parse_user_query

#: Default state directory for ``repro store`` commands.
DEFAULT_STATE_DIR = ".repro-store"

TREE_METHODS = {
    "topdown": transform_topdown,
    "twopass": transform_twopass,
    "naive": transform_naive,
    "copy": transform_copy_update,
}


def _cmd_transform(args: argparse.Namespace) -> int:
    query = parse_transform_query(args.query)
    if args.method == "sax":
        result = transform_sax_file(args.input, query, args.output)
        if result is not None:
            sys.stdout.write(result + "\n")
        return 0
    tree = parse_file(args.input)
    transformed = TREE_METHODS[args.method](tree, query)
    if args.output:
        write_file(transformed, args.output, indent="  " if args.pretty else None)
    else:
        sys.stdout.write(serialize(transformed, indent="  " if args.pretty else None))
        sys.stdout.write("\n")
    return 0


def _cmd_compose(args: argparse.Namespace) -> int:
    transform_query = parse_transform_query(args.transform)
    user_query = parse_user_query(args.user_query)
    composed = compose_queries(user_query, transform_query)
    if args.show_plan or not args.input:
        print(f"composed query: {composed}")
    if not args.input:
        return 0
    tree = parse_file(args.input)
    for item in evaluate_composed(tree, composed):
        if isinstance(item, Element):
            print(serialize(item))
        else:
            print(item)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    size = write_xmark_file(args.output, args.factor, seed=args.seed)
    print(f"wrote {args.output}: {size / 1048576:.2f} MB (factor {args.factor}, seed {args.seed})")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    path = parse_xpath(args.path)
    print("selecting NFA (Section 3.4):")
    print(build_selecting_nfa(path).describe())
    filtering = build_filtering_nfa(path)
    print("\nfiltering NFA (Section 5):")
    print(filtering.describe())
    if len(filtering.space):
        print(f"\nnormalized qualifier expressions (LQ, {len(filtering.space)} entries):")
        for expr in filtering.space.expressions:
            print(f"  q{expr.nq_id}: {type(expr).__name__}")
    return 0


# ----------------------------------------------------------------------
# The view store (repro.store) commands
# ----------------------------------------------------------------------


def _cmd_store_load(args: argparse.Namespace) -> int:
    store = open_store(args.state)
    doc = store.load(args.name, args.input, replace=args.replace)
    save_store(store, args.state)
    print(f"loaded {doc.name!r} v{doc.version}: {doc.root.size()} nodes from {args.input}")
    return 0


def _cmd_store_defview(args: argparse.Namespace) -> int:
    store = open_store(args.state)
    view = store.define_view(args.name, args.base, args.transform)
    doc_name, layers = store.views.stack(view.name)
    save_store(store, args.state)
    print(
        f"defined view {view.name!r} over {view.base!r} "
        f"(stack depth {len(layers)} on document {doc_name!r})"
    )
    return 0


def _cmd_store_query(args: argparse.Namespace) -> int:
    store = open_store(args.state)
    results = store.query(args.name, args.user_query, include_staged=args.staged)
    for item in results:
        if isinstance(item, Element):
            print(serialize(item))
        else:
            print(item)
    print(f"({len(results)} result(s) from {args.name!r})", file=sys.stderr)
    return 0


def _cmd_store_stage(args: argparse.Namespace) -> int:
    store = open_store(args.state)
    depth = store.stage(args.name, args.transform)
    save_store(store, args.state)
    print(f"staged update #{depth} on {args.name!r} (hypothetical until commit)")
    return 0


def _cmd_store_commit(args: argparse.Namespace) -> int:
    store = open_store(args.state)
    version = store.commit(args.name, args.transform)
    save_store(store, args.state)
    print(f"committed {args.name!r}: now v{version}")
    return 0


def _cmd_store_rollback(args: argparse.Namespace) -> int:
    store = open_store(args.state)
    dropped = store.rollback(args.name, args.count)
    save_store(store, args.state)
    print(f"rolled back {dropped} staged update(s) on {args.name!r}")
    return 0


def _cmd_store_stat(args: argparse.Namespace) -> int:
    store = open_store(args.state)
    stats = store.stats()
    if not stats["documents"]:
        print(f"store at {args.state!r} is empty")
        return 0
    print(f"store at {args.state!r}:")
    for name, info in stats["documents"].items():
        print(
            f"  document {name!r}: v{info['version']}, {info['nodes']} nodes, "
            f"depth {info['depth']}, {info['staged']} staged, "
            f"{info['committed']} committed"
        )
    for name, info in stats["views"].items():
        print(
            f"  view {name!r}: over {info['base']!r} "
            f"(document {info['document']!r}, stack depth {info['depth']})"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Transform queries for XML (SIGMOD 2007 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_transform = sub.add_parser("transform", help="evaluate a transform query on a document")
    p_transform.add_argument("-q", "--query", required=True, help="the transform query text")
    p_transform.add_argument("-i", "--input", required=True, help="input XML file")
    p_transform.add_argument("-o", "--output", help="output file (stdout if omitted)")
    p_transform.add_argument(
        "--method",
        choices=sorted(TREE_METHODS) + ["sax"],
        default="topdown",
        help="evaluation algorithm (sax streams file-to-file)",
    )
    p_transform.add_argument("--pretty", action="store_true", help="indent the output")
    p_transform.set_defaults(func=_cmd_transform)

    p_compose = sub.add_parser("compose", help="compose a user query with a transform query")
    p_compose.add_argument("-t", "--transform", required=True, help="the transform query text")
    p_compose.add_argument("-u", "--user-query", required=True, help="the FLWR user query text")
    p_compose.add_argument("-i", "--input", help="evaluate the composition on this XML file")
    p_compose.add_argument("--show-plan", action="store_true", help="print the composed query")
    p_compose.set_defaults(func=_cmd_compose)

    p_generate = sub.add_parser("generate", help="generate an XMark-shaped document")
    p_generate.add_argument("--factor", type=float, default=0.01, help="XMark scaling factor")
    p_generate.add_argument("--seed", type=int, default=42)
    p_generate.add_argument("-o", "--output", required=True, help="output file")
    p_generate.set_defaults(func=_cmd_generate)

    p_explain = sub.add_parser("explain", help="show the automata built for an X expression")
    p_explain.add_argument("-p", "--path", required=True, help="the X expression")
    p_explain.set_defaults(func=_cmd_explain)

    p_store = sub.add_parser(
        "store", help="resident documents, stacked views, commit/rollback"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)

    def _store_parser(name: str, help_text: str, func) -> argparse.ArgumentParser:
        p = store_sub.add_parser(name, help=help_text)
        p.add_argument(
            "--state",
            default=DEFAULT_STATE_DIR,
            help=f"state directory (default {DEFAULT_STATE_DIR})",
        )
        p.set_defaults(func=func)
        return p

    p_load = _store_parser("load", "parse a document into the store", _cmd_store_load)
    p_load.add_argument("-n", "--name", required=True, help="document name")
    p_load.add_argument("-i", "--input", required=True, help="input XML file")
    p_load.add_argument(
        "--replace", action="store_true", help="supersede an existing document"
    )

    p_defview = _store_parser(
        "defview", "define a view over a document or another view", _cmd_store_defview
    )
    p_defview.add_argument("-n", "--name", required=True, help="view name")
    p_defview.add_argument(
        "-b", "--base", required=True, help="base document or view name"
    )
    p_defview.add_argument(
        "-t", "--transform", required=True, help="the view's transform query text"
    )

    p_query = _store_parser(
        "query", "answer a user query against a document or view", _cmd_store_query
    )
    p_query.add_argument("-n", "--name", required=True, help="target document or view")
    p_query.add_argument("-u", "--user-query", required=True, help="the FLWR query text")
    p_query.add_argument(
        "--staged",
        action="store_true",
        help="evaluate against the staged (hypothetical) state",
    )

    p_stage = _store_parser(
        "stage", "stage a hypothetical transform against a document", _cmd_store_stage
    )
    p_stage.add_argument("-n", "--name", required=True, help="document name")
    p_stage.add_argument("-t", "--transform", required=True, help="transform query text")

    p_commit = _store_parser(
        "commit", "apply staged updates destructively", _cmd_store_commit
    )
    p_commit.add_argument("-n", "--name", required=True, help="document name")
    p_commit.add_argument(
        "-t", "--transform", help="stage this transform first, then commit"
    )

    p_rollback = _store_parser(
        "rollback", "discard staged updates", _cmd_store_rollback
    )
    p_rollback.add_argument("-n", "--name", required=True, help="document name")
    p_rollback.add_argument(
        "-c", "--count", type=int, help="drop only the last COUNT staged updates"
    )

    _store_parser("stat", "show documents, views and cache state", _cmd_store_stat)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into `head`); exit quietly.
        import os

        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        os._exit(0)
    except (ValueError, OSError) as exc:
        # Every parser/evaluator error in this codebase (XPathSyntaxError,
        # XMLSyntaxError, UnsupportedPathError, StoreError, …) subclasses
        # ValueError; OSError covers missing/unreadable files.  User
        # mistakes get one line on stderr, not a traceback.
        print(f"repro: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
