"""Command-line interface: transform documents, compose queries,
generate workload data, and inspect automata.

::

    python -m repro transform -q 'transform copy $a := doc("f") modify \\
        do delete $a//price return $a' -i in.xml -o out.xml --method sax
    python -m repro compose -t '<transform query>' -u 'for $x in … return $x' -i in.xml
    python -m repro generate --factor 0.1 -o xmark.xml
    python -m repro explain -p '//part[pname = "kb"]//part'
"""

from __future__ import annotations

import argparse
import sys

from repro.automata import build_filtering_nfa, build_selecting_nfa
from repro.compose import compose as compose_queries
from repro.compose import evaluate_composed
from repro.transform import (
    parse_transform_query,
    transform_copy_update,
    transform_naive,
    transform_sax_file,
    transform_topdown,
    transform_twopass,
)
from repro.xmark.generator import write_xmark_file
from repro.xmltree import Element, parse_file, serialize, write_file
from repro.xpath import parse_xpath
from repro.xquery import parse_user_query

TREE_METHODS = {
    "topdown": transform_topdown,
    "twopass": transform_twopass,
    "naive": transform_naive,
    "copy": transform_copy_update,
}


def _cmd_transform(args: argparse.Namespace) -> int:
    query = parse_transform_query(args.query)
    if args.method == "sax":
        result = transform_sax_file(args.input, query, args.output)
        if result is not None:
            sys.stdout.write(result + "\n")
        return 0
    tree = parse_file(args.input)
    transformed = TREE_METHODS[args.method](tree, query)
    if args.output:
        write_file(transformed, args.output, indent="  " if args.pretty else None)
    else:
        sys.stdout.write(serialize(transformed, indent="  " if args.pretty else None))
        sys.stdout.write("\n")
    return 0


def _cmd_compose(args: argparse.Namespace) -> int:
    transform_query = parse_transform_query(args.transform)
    user_query = parse_user_query(args.user_query)
    composed = compose_queries(user_query, transform_query)
    if args.show_plan or not args.input:
        print(f"composed query: {composed}")
    if not args.input:
        return 0
    tree = parse_file(args.input)
    for item in evaluate_composed(tree, composed):
        if isinstance(item, Element):
            print(serialize(item))
        else:
            print(item)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    size = write_xmark_file(args.output, args.factor, seed=args.seed)
    print(f"wrote {args.output}: {size / 1048576:.2f} MB (factor {args.factor}, seed {args.seed})")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    path = parse_xpath(args.path)
    print("selecting NFA (Section 3.4):")
    print(build_selecting_nfa(path).describe())
    filtering = build_filtering_nfa(path)
    print("\nfiltering NFA (Section 5):")
    print(filtering.describe())
    if len(filtering.space):
        print(f"\nnormalized qualifier expressions (LQ, {len(filtering.space)} entries):")
        for expr in filtering.space.expressions:
            print(f"  q{expr.nq_id}: {type(expr).__name__}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Transform queries for XML (SIGMOD 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_transform = sub.add_parser("transform", help="evaluate a transform query on a document")
    p_transform.add_argument("-q", "--query", required=True, help="the transform query text")
    p_transform.add_argument("-i", "--input", required=True, help="input XML file")
    p_transform.add_argument("-o", "--output", help="output file (stdout if omitted)")
    p_transform.add_argument(
        "--method",
        choices=sorted(TREE_METHODS) + ["sax"],
        default="topdown",
        help="evaluation algorithm (sax streams file-to-file)",
    )
    p_transform.add_argument("--pretty", action="store_true", help="indent the output")
    p_transform.set_defaults(func=_cmd_transform)

    p_compose = sub.add_parser("compose", help="compose a user query with a transform query")
    p_compose.add_argument("-t", "--transform", required=True, help="the transform query text")
    p_compose.add_argument("-u", "--user-query", required=True, help="the FLWR user query text")
    p_compose.add_argument("-i", "--input", help="evaluate the composition on this XML file")
    p_compose.add_argument("--show-plan", action="store_true", help="print the composed query")
    p_compose.set_defaults(func=_cmd_compose)

    p_generate = sub.add_parser("generate", help="generate an XMark-shaped document")
    p_generate.add_argument("--factor", type=float, default=0.01, help="XMark scaling factor")
    p_generate.add_argument("--seed", type=int, default=42)
    p_generate.add_argument("-o", "--output", required=True, help="output file")
    p_generate.set_defaults(func=_cmd_generate)

    p_explain = sub.add_parser("explain", help="show the automata built for an X expression")
    p_explain.add_argument("-p", "--path", required=True, help="the X expression")
    p_explain.set_defaults(func=_cmd_explain)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into `head`); exit quietly.
        import os

        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        os._exit(0)


if __name__ == "__main__":
    sys.exit(main())
