"""Command-line interface: transform documents, compose queries,
generate workload data, inspect automata and plans, and run the view
store.

::

    python -m repro transform -q 'transform copy $a := doc("f") modify \\
        do delete $a//price return $a' -i in.xml -o out.xml
    python -m repro transform -q @query.xqu -i in.xml --method sax
    python -m repro query -q 'for $x in people/person return $x' -i in.xml --stats
    python -m repro compose -t '<transform query>' -u 'for $x in … return $x' -i in.xml
    python -m repro generate --factor 0.1 -o xmark.xml
    python -m repro explain -p '//part[pname = "kb"]//part'
    python -m repro explain -q '<transform query>' -i in.xml
    python -m repro store load -n db -i catalog.xml
    python -m repro store defview -n public -b db -t '<transform query>'
    python -m repro store query -n public -u 'for $x in … return $x'
    python -m repro store commit -n db -t '<transform query>'
    python -m repro store stat
    python -m repro serve --state .repro-store --port 7007

Every query-text option (``transform -q``, ``compose -t/-u``,
``explain -q``, ``store … -t/-u``) also accepts ``@path`` to read the
text from a file and ``-`` to read it from stdin, so long queries need
not live on the command line.

``transform`` defaults to ``--method auto``: the engine's cost-based
planner picks the evaluation strategy from the query's shape and the
input's size (``repro explain -q …`` shows the decision).

Errors from user input (query syntax, unsupported paths, missing
files, unknown store names) exit with status 2 and a one-line
``repro: …`` message on stderr — no tracebacks at the CLI boundary.
"""

from __future__ import annotations

import argparse
import os
import sys
import warnings

from repro import __version__
from repro.automata import build_filtering_nfa, build_selecting_nfa
from repro.engine import ALL_STRATEGIES, default_engine
from repro.store.state import StateLock, locked_state, open_store, save_store
from repro.xmark.generator import write_xmark_file
from repro.xmltree import Element, serialize
from repro.xpath import parse_xpath

#: Default state directory for ``repro store`` commands.
DEFAULT_STATE_DIR = ".repro-store"

#: Fixed tree methods selectable with --method (beyond auto/sax).
TREE_METHODS = tuple(s for s in ALL_STRATEGIES if s not in ("sax", "stream"))


#: Guards against two query options draining stdin in one invocation
#: (the second read would silently see an empty stream); reset by
#: :func:`main`.
_stdin_consumed = False


def read_query_arg(value: str) -> str:
    """Resolve a query-text argument: literal text, ``@path`` (read the
    file), or ``-`` (read stdin; at most one option per invocation)."""
    global _stdin_consumed
    if value == "-":
        if _stdin_consumed:
            raise ValueError(
                "stdin (-) can supply only one query option per invocation; "
                "use @file for the others"
            )
        _stdin_consumed = True
        text = sys.stdin.read()
    elif value.startswith("@"):
        with open(value[1:], "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        return value
    if not text.strip():
        raise ValueError("empty query text (from @file or stdin)")
    return text.strip()


def _cmd_transform(args: argparse.Namespace) -> int:
    query_text = read_query_arg(args.query)
    prepared = default_engine().prepare_transform(query_text)
    if args.explain:
        if args.method != "auto":
            print(f"method forced by --method: {args.method}")
            print("(the planner's own choice for this input would be:)")
        print(prepared.explain(args.input))
        return 0
    if args.method == "sax":
        # File-to-file streaming with the prepared automata.
        if args.pretty:
            print(
                "repro: pretty-printing is ignored for streamed "
                "file-to-file transforms (streaming keeps memory bounded)",
                file=sys.stderr,
            )
        result = prepared.stream_file(args.input, args.output)
        if result is not None:
            sys.stdout.write(result + "\n")
        return 0
    if args.output:
        # Library warnings (e.g. --pretty ignored on a streamed plan)
        # are restyled as one-line repro: messages at the CLI boundary.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            prepared.run_to_file(
                args.input, args.output, method=args.method, pretty=args.pretty
            )
        for warning in caught:
            print(f"repro: {warning.message}", file=sys.stderr)
    elif (
        args.method == "auto"
        and not args.pretty
        and prepared.stream_if_planned(args.input, sys.stdout)
    ):
        # Planner chose streaming: events went straight to stdout, so
        # memory really stayed bounded by document depth.
        sys.stdout.write("\n")
    else:
        transformed = prepared.run(args.input, method=args.method)
        sys.stdout.write(serialize(transformed, indent="  " if args.pretty else None))
        sys.stdout.write("\n")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    """Run a FLWR user query against a document file.

    The default backend loads the file straight into a frozen columnar
    arena (no Node tree on the load path) and evaluates over index
    ranges, serializing matches directly from the columns.  ``--stats``
    reports the backend choice, the engine's metrics-registry snapshot
    and peak memory (tracemalloc); ``--json`` emits one
    ``{"results": …, "stats": …}`` object instead of plain lines.
    """
    import json
    import tracemalloc

    from repro.automata.arena_run import serialize_arena_items
    from repro.obs import MetricsRegistry
    from repro.xmltree.parser import parse_file, parse_file_to_arena

    query_text = read_query_arg(args.user_query)
    engine = default_engine()
    want_stats = args.stats or args.json
    registry = MetricsRegistry(enabled=want_stats)
    if want_stats:
        engine.bind_metrics(registry)
        tracemalloc.start()
    prepared = engine.prepare_query(query_text)
    if args.analyze:
        # Plan-vs-actual: run under an execution profile and print the
        # estimate next to what the scan measured (results still go to
        # stdout, the report to stderr, so pipelines keep working).
        doc = (
            parse_file(args.input)
            if args.backend == "node"
            else parse_file_to_arena(args.input)
        )
        report, results = prepared.explain_analyze(doc)
        for item in results:
            print(serialize(item) if isinstance(item, Element) else str(item))
        print(report, file=sys.stderr)
        return 0
    if args.backend == "node":
        tree = parse_file(args.input)
        results = prepared.run(tree)
        lines = [
            serialize(item) if isinstance(item, Element) else str(item)
            for item in results
        ]
        plan = None
    else:
        arena = parse_file_to_arena(args.input)
        refs = prepared.run_refs(arena)
        lines = serialize_arena_items(arena, refs)
        plan = engine.planner.last_plan
    stats: dict = {}
    if want_stats:
        current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        stats["query.backend"] = plan.backend if plan is not None else "node"
        stats["query.results"] = len(lines)
        stats["process.memory.peak_bytes"] = peak
        stats["process.memory.resident_bytes"] = current
        if args.backend != "node":
            for key, value in arena.stats().items():
                stats[f"store.arena.{key}"] = value
        stats.update(registry.snapshot())
    if args.json:
        print(json.dumps({"results": lines, "stats": stats}, sort_keys=True))
        return 0
    for line in lines:
        print(line)
    print(f"({len(lines)} result(s))", file=sys.stderr)
    if args.stats:
        print(f"backend: {stats['query.backend']}", file=sys.stderr)
        if args.backend != "node":
            print(
                f"arena: {stats['store.arena.nodes']} nodes, "
                f"{stats['store.arena.column_bytes']} column bytes, "
                f"{stats['store.arena.total_bytes']} bytes total",
                file=sys.stderr,
            )
        print(
            f"peak memory: {peak} bytes (resident after run: {current})",
            file=sys.stderr,
        )
        for name in sorted(stats):
            if name.startswith("engine.planner.chosen."):
                print(f"{name}: {stats[name]}", file=sys.stderr)
    return 0


def _cmd_compose(args: argparse.Namespace) -> int:
    engine = default_engine()
    prepared = engine.prepare_composed(
        read_query_arg(args.user_query), read_query_arg(args.transform)
    )
    composed = prepared.plan
    if args.show_plan or not args.input:
        print(f"composed query: {composed}")
    if not args.input:
        return 0
    for item in prepared.run(args.input):
        if isinstance(item, Element):
            print(serialize(item))
        else:
            print(item)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    size = write_xmark_file(args.output, args.factor, seed=args.seed)
    print(f"wrote {args.output}: {size / 1048576:.2f} MB (factor {args.factor}, seed {args.seed})")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    if not args.path and not args.query:
        raise ValueError("explain needs -p (an X expression) or -q (a query)")
    if args.query:
        text = read_query_arg(args.query)
        print(default_engine().explain(text, args.input))
        if not args.path:
            return 0
        print()
    path = parse_xpath(args.path)
    print("selecting NFA (Section 3.4):")
    print(build_selecting_nfa(path).describe())
    filtering = build_filtering_nfa(path)
    print("\nfiltering NFA (Section 5):")
    print(filtering.describe())
    if len(filtering.space):
        print(f"\nnormalized qualifier expressions (LQ, {len(filtering.space)} entries):")
        for expr in filtering.space.expressions:
            print(f"  q{expr.nq_id}: {type(expr).__name__}")
    return 0


# ----------------------------------------------------------------------
# The view store (repro.store) commands
# ----------------------------------------------------------------------
#
# Every command is one exclusive read-modify-write cycle on the state
# directory: locked_state() flocks state.lock around open + mutate +
# save, so two concurrent invocations (or an invocation racing a
# running `repro serve`) cannot interleave their commits.  A held lock
# or an unreadable manifest surfaces as a typed StoreError — one line
# on stderr and exit 2 at the boundary below, never a traceback.


def _cmd_store_load(args: argparse.Namespace) -> int:
    with locked_state(args.state) as store:
        doc = store.load(args.name, args.input, replace=args.replace)
        print(
            f"loaded {doc.name!r} v{doc.version}: "
            f"{doc.root.size()} nodes from {args.input}"
        )
    return 0


def _cmd_store_defview(args: argparse.Namespace) -> int:
    with locked_state(args.state) as store:
        view = store.define_view(args.name, args.base, read_query_arg(args.transform))
        doc_name, layers = store.views.stack(view.name)
        print(
            f"defined view {view.name!r} over {view.base!r} "
            f"(stack depth {len(layers)} on document {doc_name!r})"
        )
    return 0


def _cmd_store_query(args: argparse.Namespace) -> int:
    with locked_state(args.state, save=False) as store:
        # The serialized read path: plain-document targets are answered
        # from the frozen columnar snapshot and serialized straight from
        # its columns (no thaw); views/staged previews serialize Nodes.
        results = store.query_serialized(
            args.name, read_query_arg(args.user_query), include_staged=args.staged
        )
    for item in results:
        print(item)
    print(f"({len(results)} result(s) from {args.name!r})", file=sys.stderr)
    return 0


def _cmd_store_stage(args: argparse.Namespace) -> int:
    with locked_state(args.state) as store:
        depth = store.stage(args.name, read_query_arg(args.transform))
    print(f"staged update #{depth} on {args.name!r} (hypothetical until commit)")
    return 0


def _cmd_store_commit(args: argparse.Namespace) -> int:
    transform = args.transform
    if transform is not None:
        transform = read_query_arg(transform)
    with locked_state(args.state) as store:
        delta = store.commit_delta(args.name, transform)
    if delta.entries == 0:
        print(f"committed {args.name!r}: now v{delta.new_version} (no-op: nothing staged)")
    else:
        how = (
            f"spliced, {delta.patches} patch(es), "
            f"{delta.touched_nodes} node(s) touched"
            if delta.spliced
            else "full rebuild"
        )
        print(f"committed {args.name!r}: now v{delta.new_version} ({how})")
    return 0


def _cmd_store_rollback(args: argparse.Namespace) -> int:
    with locked_state(args.state) as store:
        dropped = store.rollback(args.name, args.count)
    print(f"rolled back {dropped} staged update(s) on {args.name!r}")
    return 0


def _cmd_store_stat(args: argparse.Namespace) -> int:
    with locked_state(args.state, save=False) as store:
        stats = store.stats()
        if getattr(args, "json", False):
            import json

            from repro.obs import MetricsRegistry

            registry = MetricsRegistry()
            store.bind_metrics(registry)
            for name in stats["documents"]:
                doc = store.documents.get(name)
                with doc.lock:
                    arena_stats = doc.arena().stats()
                stats["documents"][name]["arena"] = arena_stats
                stats["documents"][name]["chain"] = store.chain_info(name)
            print(json.dumps(
                {"store": stats, "metrics": registry.snapshot()}, sort_keys=True
            ))
            return 0
    if not stats["documents"]:
        print(f"store at {args.state!r} is empty")
        return 0
    print(f"store at {args.state!r}:")
    for name, info in stats["documents"].items():
        print(
            f"  document {name!r}: v{info['version']}, {info['nodes']} nodes, "
            f"depth {info['depth']}, {info['staged']} staged, "
            f"{info['committed']} committed"
        )
        # Freeze (or reuse) the columnar snapshot so stat reports the
        # real arena memory the read path uses.  Each CLI command is
        # its own process, so the build/read counters a resident store
        # accumulates (store.stats()) are not meaningful here.
        doc = store.documents.get(name)
        with doc.lock:
            arena_stats = doc.arena().stats()
        print(
            f"    arena snapshot: {arena_stats['nodes']} nodes "
            f"({arena_stats['elements']} elements), "
            f"{arena_stats['column_bytes']} column bytes, "
            f"{arena_stats['total_bytes']} bytes total"
        )
        chain = store.chain_info(name)
        versions = ", ".join(f"v{v}" for v in chain["versions"])
        print(
            f"    version chain: {chain['length']} resident ({versions}), "
            f"{chain['splices']} splice(s); "
            f"{chain['shared_bytes']} bytes shared / "
            f"{chain['owned_bytes']} owned"
        )
    for name, info in stats["views"].items():
        print(
            f"  view {name!r}: over {info['base']!r} "
            f"(document {info['document']!r}, stack depth {info['depth']})"
        )
    print("  caches [hits/misses/evictions]:")
    cache_rows = dict(stats["caches"]["compiled"])
    cache_rows["results"] = stats["caches"]["results"]
    for name, cache in cache_rows.items():
        print(
            f"    {name:<14} {cache['hits']}/{cache['misses']}"
            f"/{cache['evictions']} (size {cache['size']}/{cache['maxsize']})"
        )
    commits = stats["commits"]
    ratio = commits["retention_ratio"]
    ratio_text = "n/a" if ratio is None else f"{ratio:.0%}"
    print(
        f"  commits: {commits['spliced']} spliced, "
        f"{commits['rebuilds']} rebuilt, {commits['noops']} no-op; "
        f"cache retention {ratio_text} "
        f"({commits['results_kept']}+{commits['mats_kept']} kept, "
        f"{commits['results_dropped']}+{commits['mats_dropped']} dropped)"
    )
    last = commits.get("last")
    if last is not None:
        last_ratio = last["retention_ratio"]
        last_text = "n/a" if last_ratio is None else f"{last_ratio:.0%}"
        print(
            f"    last commit: {last['doc']!r} v{last['version']} "
            f"({'splice' if last['spliced'] else 'rebuild'}, "
            f"{last['entries']} entries, {last['touched_nodes']} touched); "
            f"retention {last_text}"
        )
    wal = stats["wal"]
    tail_note = ", torn tail truncated" if wal["truncated_tail"] else ""
    print(
        f"  wal: {wal['replayed']} commit(s) replayed at open{tail_note}; "
        f"{wal.get('seq', 0)} record(s) pending checkpoint"
    )
    return 0


def _cmd_store_slowlog(args: argparse.Namespace) -> int:
    """Read the slow-query log a ``repro serve --state`` run streamed
    to ``<state>/slowlog.jsonl`` (newest last)."""
    import json

    path = os.path.join(args.state, "slowlog.jsonl")
    if not os.path.exists(path):
        print(f"no slow-query log at {path!r} (run `repro serve --state "
              f"{args.state}` with --slow-ms to produce one)", file=sys.stderr)
        return 0
    entries = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                print(f"repro: skipping malformed slowlog line", file=sys.stderr)
    if args.limit:
        entries = entries[-args.limit:]
    if args.json:
        for entry in entries:
            print(json.dumps(entry, sort_keys=True))
        return 0
    if not entries:
        print(f"slow-query log at {path!r} is empty")
        return 0
    for entry in entries:
        trace = entry.get("trace") or {}
        spans = trace.get("spans") or []
        print(
            f"{entry.get('dur_ms', '?'):>10} ms  {entry.get('outcome', '?'):<8} "
            f"{entry.get('target', '?')!r}  queue {entry.get('queue_ms', '?')} ms  "
            f"{len(spans)} span(s)  {entry.get('query', '')[:60]!r}"
        )
    print(f"({len(entries)} entr{'y' if len(entries) == 1 else 'ies'})",
          file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# The query service (repro.service): repro serve
# ----------------------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot the concurrent query service on a TCP port.

    With ``--state`` the server loads the durable store at boot, holds
    its state-directory lock for the whole run (so CLI commands cannot
    interleave), and saves the store back on graceful shutdown (SIGINT
    or SIGTERM).  Without it the store is in-memory only — clients
    populate it over the wire with ``load`` frames.
    """
    import json
    import signal
    import threading
    import time

    from repro.service import QueryService, ServiceConfig, ServiceServer

    config = ServiceConfig(
        workers=args.workers,
        mode=args.mode,
        batch_window=args.window_ms / 1000.0,
        max_queue=args.max_queue,
        slow_threshold=args.slow_ms / 1000.0 if args.slow_ms >= 0 else -1.0,
    )
    state_lock = StateLock(args.state).acquire() if args.state else None
    slow_file = None
    try:
        store = open_store(args.state) if args.state else None
        if store is not None and store.wal_replayed:
            print(
                f"repro serve: replayed {store.wal_replayed} commit(s) "
                f"from the write-ahead log",
                file=sys.stderr,
                flush=True,
            )
        # Commits are made durable per-commit by the store's WAL; admin
        # writes (load/defview/drop) change the document set the WAL
        # cannot describe, so the service checkpoints those eagerly.
        checkpoint = (
            (lambda: save_store(store, args.state)) if args.state else None
        )
        # With a state directory, slow queries also stream to
        # <state>/slowlog.jsonl (write-through, line-buffered) so
        # `repro store slowlog` can read them after the server exits.
        slow_sink = None
        if args.state:
            slow_path = os.path.join(args.state, "slowlog.jsonl")
            slow_file = open(slow_path, "a", encoding="utf-8")

            def slow_sink(entry: dict) -> None:
                slow_file.write(json.dumps(entry, default=str) + "\n")
                slow_file.flush()

        service = QueryService(
            store=store, config=config, checkpoint=checkpoint,
            slow_sink=slow_sink,
        )
        server = ServiceServer(service, args.host, args.port)
        host, port = server.address
        print(
            f"repro serve: listening on {host}:{port} "
            f"(mode {config.mode}, {config.workers} workers, "
            f"window {args.window_ms}ms"
            + (f", state {args.state!r})" if args.state else ", in-memory)"),
            flush=True,
        )
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{port}\n")

        exposition = None
        if args.expose:
            from repro.obs import ExpositionServer

            exposition = ExpositionServer(
                snapshot_fn=service.registry.snapshot,
                events_fn=service.tracer.records,
                host=args.host,
                port=args.expose_port,
            )
            exposition.start()
            expose_host, expose_port = exposition.address
            print(
                f"repro serve: exposing metrics at "
                f"http://{expose_host}:{expose_port}/metrics "
                f"(trace events at /events)",
                file=sys.stderr,
                flush=True,
            )
            if args.expose_port_file:
                with open(args.expose_port_file, "w", encoding="utf-8") as handle:
                    handle.write(f"{expose_port}\n")

        def _terminate(signum, frame):  # SIGTERM → same graceful path
            raise KeyboardInterrupt

        stop_reporting = threading.Event()
        reporter = None
        if args.metrics_interval > 0:

            def _report_loop() -> None:
                # One JSON object per line (machine-parseable — the CI
                # loadgen smoke asserts on it): request counters,
                # latency percentiles, WAL durability counters, worker
                # restarts, and the slow-query log's tallies.
                while not stop_reporting.wait(args.metrics_interval):
                    counts = service.metrics()
                    snapshot = service.registry.snapshot()
                    latency = snapshot.get("service.request.latency")
                    latency = latency if isinstance(latency, dict) else {}

                    def _ms(key: str):
                        value = latency.get(key)
                        return (
                            round(value * 1000.0, 3)
                            if isinstance(value, (int, float))
                            else None
                        )

                    line = {
                        "event": "metrics",
                        "ts": time.time(),
                        "requests": counts["requests"],
                        "shed": counts["shed"],
                        "batches": counts["batches"],
                        "evaluations": counts["evaluations"],
                        "memo_hits": counts["memo_hits"],
                        "snapshot_reads": counts["snapshot_reads"],
                        "p50_ms": _ms("p50"),
                        "p99_ms": _ms("p99"),
                        "wal": {
                            key.rsplit(".", 1)[-1]: value
                            for key, value in snapshot.items()
                            if key.startswith("store.wal.")
                        },
                        "worker_restarts": snapshot.get(
                            "service.workers.restarts", 0
                        ),
                        "slowlog": service.slowlog()["stats"],
                    }
                    print(
                        json.dumps(line, default=str),
                        file=sys.stderr,
                        flush=True,
                    )

            reporter = threading.Thread(
                target=_report_loop, name="repro-serve-metrics", daemon=True
            )
            reporter.start()

        previous = signal.signal(signal.SIGTERM, _terminate)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("repro serve: shutting down", file=sys.stderr)
        finally:
            signal.signal(signal.SIGTERM, previous)
            stop_reporting.set()
            if reporter is not None:
                reporter.join()
            if exposition is not None:
                exposition.stop()
        server.stop()  # drains admitted requests, stops the pool
        if args.state:
            save_store(service.store, args.state)
            print(f"repro serve: state saved to {args.state!r}", file=sys.stderr)
    finally:
        if slow_file is not None:
            slow_file.close()
        if state_lock is not None:
            state_lock.release()
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import runner

    return runner.run_from_options(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Transform queries for XML (SIGMOD 2007 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    query_help_suffix = " (@path reads a file, - reads stdin)"

    p_transform = sub.add_parser("transform", help="evaluate a transform query on a document")
    p_transform.add_argument(
        "-q", "--query", required=True,
        help="the transform query text" + query_help_suffix,
    )
    p_transform.add_argument("-i", "--input", required=True, help="input XML file")
    p_transform.add_argument("-o", "--output", help="output file (stdout if omitted)")
    p_transform.add_argument(
        "--method",
        choices=["auto"] + sorted(TREE_METHODS) + ["sax"],
        default="auto",
        help="evaluation algorithm: auto lets the cost-based planner "
        "choose (sax streams file-to-file)",
    )
    p_transform.add_argument("--pretty", action="store_true", help="indent the output")
    p_transform.add_argument(
        "--explain", action="store_true",
        help="print the chosen plan instead of executing",
    )
    p_transform.set_defaults(func=_cmd_transform)

    p_query = sub.add_parser(
        "query", help="run a FLWR user query on a document (columnar backend)"
    )
    p_query.add_argument(
        "-q", "--user-query", required=True,
        help="the FLWR query text" + query_help_suffix,
    )
    p_query.add_argument("-i", "--input", required=True, help="input XML file")
    p_query.add_argument(
        "--backend",
        choices=["auto", "arena", "node"],
        default="auto",
        help="data representation: auto/arena load a frozen columnar "
        "arena (no Node tree), node parses an object tree",
    )
    p_query.add_argument(
        "--stats", action="store_true",
        help="print backend choice, arena memory, peak memory and the "
        "engine's metric snapshot to stderr",
    )
    p_query.add_argument(
        "--json", action="store_true",
        help='emit one {"results": …, "stats": …} JSON object on stdout',
    )
    p_query.add_argument(
        "--analyze", action="store_true",
        help="run under an execution profile and print the plan's "
        "estimate next to the measured scan (nodes visited, prunes, "
        "DFA transitions, serialize bytes) on stderr",
    )
    p_query.set_defaults(func=_cmd_query)

    p_compose = sub.add_parser("compose", help="compose a user query with a transform query")
    p_compose.add_argument(
        "-t", "--transform", required=True,
        help="the transform query text" + query_help_suffix,
    )
    p_compose.add_argument(
        "-u", "--user-query", required=True,
        help="the FLWR user query text" + query_help_suffix,
    )
    p_compose.add_argument("-i", "--input", help="evaluate the composition on this XML file")
    p_compose.add_argument("--show-plan", action="store_true", help="print the composed query")
    p_compose.set_defaults(func=_cmd_compose)

    p_generate = sub.add_parser("generate", help="generate an XMark-shaped document")
    p_generate.add_argument("--factor", type=float, default=0.01, help="XMark scaling factor")
    p_generate.add_argument("--seed", type=int, default=42)
    p_generate.add_argument("-o", "--output", required=True, help="output file")
    p_generate.set_defaults(func=_cmd_generate)

    p_explain = sub.add_parser(
        "explain", help="show the plan for a query or the automata for an X expression"
    )
    p_explain.add_argument("-p", "--path", help="the X expression")
    p_explain.add_argument(
        "-q", "--query",
        help="a transform or user query: show the engine's plan"
        + query_help_suffix,
    )
    p_explain.add_argument(
        "-i", "--input", help="plan against this XML file (with -q)"
    )
    p_explain.set_defaults(func=_cmd_explain)

    p_store = sub.add_parser(
        "store", help="resident documents, stacked views, commit/rollback"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)

    def _store_parser(name: str, help_text: str, func) -> argparse.ArgumentParser:
        p = store_sub.add_parser(name, help=help_text)
        p.add_argument(
            "--state",
            default=DEFAULT_STATE_DIR,
            help=f"state directory (default {DEFAULT_STATE_DIR})",
        )
        p.set_defaults(func=func)
        return p

    p_load = _store_parser("load", "parse a document into the store", _cmd_store_load)
    p_load.add_argument("-n", "--name", required=True, help="document name")
    p_load.add_argument("-i", "--input", required=True, help="input XML file")
    p_load.add_argument(
        "--replace", action="store_true", help="supersede an existing document"
    )

    p_defview = _store_parser(
        "defview", "define a view over a document or another view", _cmd_store_defview
    )
    p_defview.add_argument("-n", "--name", required=True, help="view name")
    p_defview.add_argument(
        "-b", "--base", required=True, help="base document or view name"
    )
    p_defview.add_argument(
        "-t", "--transform", required=True,
        help="the view's transform query text" + query_help_suffix,
    )

    p_query = _store_parser(
        "query", "answer a user query against a document or view", _cmd_store_query
    )
    p_query.add_argument("-n", "--name", required=True, help="target document or view")
    p_query.add_argument("-u", "--user-query", required=True,
        help="the FLWR query text" + query_help_suffix,)
    p_query.add_argument(
        "--staged",
        action="store_true",
        help="evaluate against the staged (hypothetical) state",
    )

    p_stage = _store_parser(
        "stage", "stage a hypothetical transform against a document", _cmd_store_stage
    )
    p_stage.add_argument("-n", "--name", required=True, help="document name")
    p_stage.add_argument("-t", "--transform", required=True,
        help="transform query text" + query_help_suffix,)

    p_commit = _store_parser(
        "commit", "apply staged updates destructively", _cmd_store_commit
    )
    p_commit.add_argument("-n", "--name", required=True, help="document name")
    p_commit.add_argument(
        "-t", "--transform",
        help="stage this transform first, then commit" + query_help_suffix,
    )

    p_rollback = _store_parser(
        "rollback", "discard staged updates", _cmd_store_rollback
    )
    p_rollback.add_argument("-n", "--name", required=True, help="document name")
    p_rollback.add_argument(
        "-c", "--count", type=int, help="drop only the last COUNT staged updates"
    )

    p_stat = _store_parser(
        "stat", "show documents, views and cache state", _cmd_store_stat
    )
    p_stat.add_argument(
        "--json", action="store_true",
        help="emit the store stats and metric snapshot as one JSON object",
    )

    p_slowlog = _store_parser(
        "slowlog",
        "read the slow-query log a `repro serve --state` run streamed "
        "to <state>/slowlog.jsonl",
        _cmd_store_slowlog,
    )
    p_slowlog.add_argument(
        "--limit", type=int, default=0, help="show only the newest N entries"
    )
    p_slowlog.add_argument(
        "--json", action="store_true",
        help="emit raw entries as JSON lines (full trace and profile)",
    )

    p_serve = sub.add_parser(
        "serve",
        help="serve queries over TCP: MVCC snapshot reads, request "
        "batching, a parallel worker pool",
    )
    p_serve.add_argument(
        "--state",
        help="durable state directory to load at boot and save on "
        "shutdown (locked for the whole run; omit for in-memory)",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=7007,
        help="TCP port (0 binds an ephemeral port; see --port-file)",
    )
    p_serve.add_argument(
        "--port-file",
        help="write the bound port number to this file once listening",
    )
    p_serve.add_argument(
        "--workers", type=int, default=4, help="worker pool size"
    )
    p_serve.add_argument(
        "--mode", choices=["thread", "process"], default="thread",
        help="worker pool mode: thread (default) or process "
        "(CPU-parallel arena scans; arenas ship to workers as pickled "
        "columns)",
    )
    p_serve.add_argument(
        "--window-ms", type=float, default=2.0,
        help="batch dispatch window in milliseconds (identical queries "
        "arriving within it coalesce into one evaluation)",
    )
    p_serve.add_argument(
        "--max-queue", type=int, default=256,
        help="admission-control bound; beyond it requests are shed "
        "with a typed 'overloaded' error",
    )
    p_serve.add_argument(
        "--metrics-interval", type=float, default=0.0,
        help="log one JSON metrics object to stderr every SECONDS "
        "while serving (0 disables); includes request counters, "
        "latency percentiles, WAL counters and slow-query tallies",
    )
    p_serve.add_argument(
        "--slow-ms", type=float, default=250.0,
        help="capture any request slower than this many milliseconds "
        "in the slow-query log with its trace and profile (0 captures "
        "everything, negative disables; default 250)",
    )
    p_serve.add_argument(
        "--expose", action="store_true",
        help="serve a scrape endpoint over HTTP: Prometheus text at "
        "/metrics, trace events as JSON lines at /events",
    )
    p_serve.add_argument(
        "--expose-port", type=int, default=0,
        help="port for --expose (0 binds an ephemeral port; see "
        "--expose-port-file)",
    )
    p_serve.add_argument(
        "--expose-port-file",
        help="write the exposition port number to this file once "
        "listening",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_lint = sub.add_parser(
        "lint",
        help="static analysis: guarded-by lock discipline, import "
        "layering, hot-path purity (also: python -m repro.analysis)",
    )
    from repro.analysis import runner as _lint_runner

    _lint_runner.add_arguments(p_lint)
    p_lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv=None) -> int:
    global _stdin_consumed
    _stdin_consumed = False
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into `head`); exit quietly.
        import os

        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        os._exit(0)
    except (ValueError, OSError) as exc:
        # Every parser/evaluator error in this codebase (XPathSyntaxError,
        # XMLSyntaxError, UnsupportedPathError, StoreError, …) subclasses
        # ValueError; OSError covers missing/unreadable files.  User
        # mistakes get one line on stderr, not a traceback.
        print(f"repro: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
