"""Algorithm ``bottomUp`` (Section 5, Fig. 9): one bottom-up pass that
evaluates every qualifier of the embedded XPath expression and
annotates the nodes with their truth values.

Driven by the *filtering* NFA: a node whose (unfiltered) state set is
empty can contribute neither to the selecting path nor to any needed
qualifier, so its subtree is pruned — the same pruning lever as
``topDown``, but sound for qualifier evaluation because the filtering
NFA also tracks qualifier paths (Fig. 8).

Faithfulness note: Fig. 9 threads ``rsat``/``rdsat`` vectors through
right-sibling recursion because the paper codes the algorithm in
side-effect-free XQuery; ``rsat_firstchild = csat_parent`` and
``rdsat_firstchild = dsat_parent`` are exactly the child/descendant
aggregates.  In Python we accumulate ``csat``/``dsat`` per stack frame
directly — the same dataflow, one visit per node, without the encoding.
The SAX variant (Section 6) does the same on its parser stack.
"""

from __future__ import annotations

from repro.automata.filtering import FilteringNFA, build_filtering_nfa
from repro.transform.qualdp import qual_dp_at
from repro.xmltree.node import Element


class Annotations:
    """The ``sat`` vectors computed by ``bottomUp``, keyed by node.

    Only nodes the filtering NFA kept alive are present; the transform
    algorithms never ask about pruned nodes (their selecting states are
    a subset of the filtering states).
    """

    def __init__(self, nfa: FilteringNFA):
        self.nfa = nfa
        self.sat_by_node: dict[int, list[bool]] = {}
        #: qualifier AST -> nq_id, for O(1) checkp lookups.
        self.nq_id_by_qual = {
            state.qual: state.nq_id
            for state in nfa.states
            if state.nq_id is not None
        }

    def checkp(self, qual, node: Element) -> bool:
        """O(1) ``checkp``: read the annotation (Fig. 10's promise)."""
        return self.sat_by_node[id(node)][self.nq_id_by_qual[qual]]

    def sat(self, node: Element, nq_id: int) -> bool:
        return self.sat_by_node[id(node)][nq_id]

    def __len__(self) -> int:
        return len(self.sat_by_node)


def bottom_up_annotate(root: Element, nfa: FilteringNFA = None, path=None) -> Annotations:
    """Run ``bottomUp`` over the tree; returns the annotations.

    Iterative post-order traversal (explicit frames), so document depth
    is not limited by the interpreter's recursion limit.  The unfiltered
    ``nextStates`` runs on the filtering NFA's lazy DFA: the per-child
    transition is a memoized ``(set id, label)`` table hit.
    """
    if nfa is None:
        nfa = build_filtering_nfa(path)
    annotations = Annotations(nfa)
    space = nfa.space
    size = len(space)
    if size == 0:
        return annotations  # no qualifiers anywhere: nothing to compute
    dfa = nfa.dfa()
    step_all = dfa.step_all
    empty_id = dfa.empty_id

    # Frame: [node, DFA set id, csat, dsat, child-cursor].
    frames: list[list] = [[root, dfa.initial_id, [False] * size, [False] * size, 0]]
    while frames:
        frame = frames[-1]
        node, states, csat, dsat, _ = frame
        children = node.children
        # Advance to the next element child.
        cursor = frame[4]
        while cursor < len(children) and not children[cursor].is_element:
            cursor += 1
        frame[4] = cursor + 1
        if cursor < len(children):
            child = children[cursor]
            child_states = step_all(states, child.label)
            if child_states != empty_id:
                frames.append([child, child_states, [False] * size, [False] * size, 0])
            # Pruned subtrees contribute all-false — sound because every
            # qualifier expression that could hold below them is gated by
            # a branch transition that just failed to fire (Fig. 9 line 6).
            continue
        # All children processed: fold this node (Fig. 9 line 12).
        sat = qual_dp_at(space, node, csat, dsat)
        annotations.sat_by_node[id(node)] = sat
        frames.pop()
        if frames:
            parent_csat = frames[-1][2]
            parent_dsat = frames[-1][3]
            for i in range(size):
                if sat[i]:
                    parent_csat[i] = True
                    parent_dsat[i] = True
                elif dsat[i]:
                    parent_dsat[i] = True
    return annotations
