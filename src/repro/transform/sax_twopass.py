"""Algorithm ``twoPassSAX`` (Section 6): transform evaluation fused
with SAX parsing, for documents too large for DOM-style trees.

Two streaming passes over the same document:

**Pass 1 — SAX bottomUp.**  A stack mirrors the open-element chain.
Each entry holds the filtering-NFA state set, the ``csat``/``dsat``
accumulators, the element's attributes and collected PCDATA.  On every
``startElement`` the paper's *cursor* assigns a fresh id to each
top-level qualifier that will need a value at that node; on
``endElement`` the entry is folded with ``QualDP`` and the values are
recorded in the list ``Ld`` under those ids.

**Pass 2 — SAX topDown.**  A second scan replays *exactly the same
cursor discipline* and looks the values up by id, so every qualifier's
truth is known already at ``startElement`` time — early enough to
suppress a deleted/replaced subtree, rename a tag, or arrange an
insertion before the closing tag.  The output is itself a SAX event
stream (serializable straight to disk).

Cursor alignment (the paper: the two NFAs "have the same structure when
sub-qualifiers … are struck out"): both automata are built from the
same normalized step list, so their spine states are created in step
order, and pass 2 tracks the *unfiltered* state set exactly as pass 1
does — qualifier truth only toggles a per-state ``alive`` flag and
never changes which states are tracked.  Both passes therefore visit
the same (node, qualifier-state) pairs in the same sorted order.

Memory: the stacks are bounded by document depth × |p|, and ``Ld``
holds one boolean per qualifier occurrence (the paper stores it on
disk but notes it is small in memory; ``spill_threshold`` in
:func:`pass1_collect_ld` exists to document the same trade-off).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from repro.automata.core import TEST_DOS
from repro.automata.filtering import FilteringNFA, build_filtering_nfa
from repro.automata.selecting import SelectingNFA, build_selecting_nfa
from repro.transform.qualdp import qual_dp
from repro.transform.query import TransformQuery
from repro.updates.ops import Delete, Insert, Rename, Replace
from repro.xmltree.node import Element
from repro.xmltree.sax import (
    EndDocument,
    EndElement,
    SAXEvent,
    StartDocument,
    StartElement,
    TextEvent,
    TwoPassSource,
    events_to_text,
    events_to_tree,
    iter_sax_file,
    tree_to_events,
)

#: A factory producing a fresh SAX event iterator per pass.
EventSource = Callable[[], Iterable[SAXEvent]]


# ----------------------------------------------------------------------
# Pass 1: SAX-integrated bottomUp
# ----------------------------------------------------------------------


class _Pass1Entry:
    """Stack entry of the SAX bottomUp pass (Section 6's five fields)."""

    __slots__ = ("states", "csat", "dsat", "texts", "attrs", "label", "qual_ids")

    def __init__(self, states, size, label, attrs):
        self.states = states            # filtering-NFA DFA set id
        self.csat = [False] * size
        self.dsat = [False] * size
        self.texts: list[str] = []
        self.attrs = attrs
        self.label = label
        self.qual_ids: list = []        # (cursor id, nq_id) pairs to emit


def pass1_collect_ld(events: Iterable[SAXEvent], nfa: FilteringNFA) -> list:
    """Run the SAX bottomUp pass; returns ``Ld`` as a list indexed by
    cursor id (the disk file of the paper, kept in memory).

    The state sets live as interned ids in the filtering NFA's lazy
    DFA; each set's needed qualifier ids (``LQ(S)``, in the sorted
    state order pass 2 mirrors) are precomputed per set, so the per-
    element work is one table hit plus the cursor bookkeeping.
    """
    space = nfa.space
    size = len(space)
    dfa = nfa.dfa()
    step_all = dfa.step_all
    empty_id = dfa.empty_id
    set_nq = dfa.set_nq
    ld: list = []
    stack: list[_Pass1Entry] = []
    prune_depth = 0  # >0 while inside a pruned subtree
    for event in events:
        if isinstance(event, StartElement):
            if prune_depth:
                prune_depth += 1
                continue
            if not stack:
                states = dfa.initial_id  # the root consumes no symbol
            else:
                states = step_all(stack[-1].states, event.name)
                if states == empty_id:
                    prune_depth = 1  # Fig. 9 line 6: skip the subtree
                    continue
            entry = _Pass1Entry(states, size, event.name, event.attrs)
            # Cursor discipline: one id per top-level qualifier needed
            # here, in sorted state order (mirrored exactly by pass 2).
            for nq_id in set_nq[states]:
                entry.qual_ids.append((len(ld), nq_id))
                ld.append(None)  # reserved; filled at endElement
            stack.append(entry)
        elif isinstance(event, EndElement):
            if prune_depth:
                prune_depth -= 1
                continue
            entry = stack.pop()
            sat = qual_dp(
                space, entry.label, "".join(entry.texts), entry.attrs,
                entry.csat, entry.dsat,
            )
            for cursor_id, nq_id in entry.qual_ids:
                ld[cursor_id] = sat[nq_id]
            if stack:
                parent = stack[-1]
                pcsat, pdsat, edsat = parent.csat, parent.dsat, entry.dsat
                for i in range(size):
                    if sat[i]:
                        pcsat[i] = True
                        pdsat[i] = True
                    elif edsat[i]:
                        pdsat[i] = True
        elif isinstance(event, TextEvent):
            if not prune_depth and stack:
                stack[-1].texts.append(event.value)
        # Start/EndDocument: nothing to do.
    return ld


# ----------------------------------------------------------------------
# Pass 2: SAX-integrated topDown
# ----------------------------------------------------------------------


class _Pass2Entry:
    """Stack entry of the SAX topDown pass: the tracked DFA set id and
    alive bitmask, plus the output decision taken at startElement."""

    __slots__ = ("set_id", "alive", "out_label", "insert_after")

    def __init__(self, set_id, alive, out_label, insert_after):
        self.set_id = set_id                  # unfiltered DFA set id
        self.alive = alive                    # bitmask over the set's members
        self.out_label = out_label            # label to emit at endElement (rename)
        self.insert_after = insert_after      # emit content before endElement


def _advance_tracked(
    nfa: SelectingNFA, current: dict, label: str
) -> tuple[dict, list]:
    """One unfiltered transition on the tracked set — the original
    frozenset/dict reference of the compiled tracked move
    (:meth:`repro.automata.dfa.LazyDFA.tracked_move`); kept for the
    equivalence property tests.

    Returns ``(tracked, to_check)``: the new ``sid -> alive`` mapping
    (alive propagated from predecessors, qualifiers not yet applied)
    and the sorted list of entered states whose qualifier needs a
    cursor value at this node.
    """
    states = nfa.states
    tracked: dict = {}
    for sid, alive in current.items():
        state = states[sid]
        if state.test == TEST_DOS:  # '*' self-loop
            tracked[sid] = tracked.get(sid, False) or alive
        for target_id in state.out_consume:
            if states[target_id].enter_matches(label):
                tracked[target_id] = tracked.get(target_id, False) or alive
    to_check = [sid for sid in sorted(tracked) if states[sid].has_qualifier]
    return tracked, to_check


def _close_epsilon(nfa: SelectingNFA, tracked: dict) -> None:
    """Propagate alive flags over ε edges (into dos states), in place —
    reference counterpart of the compiled move's ``eps_pairs``."""
    states = nfa.states
    # ε edges go from state i to the dos state i+1: increasing-id order
    # reaches a fixpoint in one sweep over the semi-linear automaton.
    for sid in sorted(tracked):
        for target_id in states[sid].out_eps:
            current = tracked.get(target_id, False)
            tracked[target_id] = current or tracked[sid]


def pass2_transform(
    events: Iterable[SAXEvent],
    nfa: SelectingNFA,
    query: TransformQuery,
    ld: list,
) -> Iterator[SAXEvent]:
    """Run the SAX topDown pass; yields the transformed event stream.

    The tracked set runs as ``(DFA set id, alive bitmask)``: one
    compiled :meth:`~repro.automata.dfa.LazyDFA.tracked_move` per
    ``(set, label)`` replaces the per-node dict rebuild of the seed —
    the cursor discipline (and hence ``Ld`` alignment with pass 1) is
    byte-for-byte the same.
    """
    update = query.update
    is_insert = isinstance(update, Insert)
    is_delete = isinstance(update, Delete)
    is_replace = isinstance(update, Replace)
    is_rename = isinstance(update, Rename)
    content_events: Optional[list] = None
    if is_insert or is_replace:
        content_events = list(tree_to_events(update.content, document=False))

    dfa = nfa.dfa()
    advance = dfa.advance_tracked
    cursor = 0
    stack: list[_Pass2Entry] = []
    suppress_depth = 0  # >0 inside a deleted/replaced subtree
    yield StartDocument()
    for event in events:
        if isinstance(event, StartElement):
            if not stack:
                # The root consumes no symbol and is never selected; a
                # context qualifier (.[q]/…) consumes its cursor id here,
                # mirroring pass 1's root entry.
                set_id, alive, cursor = dfa.root_tracked(ld, cursor)
                stack.append(_Pass2Entry(set_id, alive, event.name, False))
                yield event
                continue
            parent = stack[-1]
            set_id, alive, cursor, selected = advance(
                parent.set_id, parent.alive, event.name, ld, cursor
            )
            selected = selected and not suppress_depth
            out_label = event.name
            insert_after = False
            if selected and is_delete:
                suppress_depth = 1
                stack.append(_Pass2Entry(set_id, alive, out_label, False))
                continue
            if selected and is_replace:
                yield from content_events
                suppress_depth = 1
                stack.append(_Pass2Entry(set_id, alive, out_label, False))
                continue
            if suppress_depth:
                suppress_depth += 1
                stack.append(_Pass2Entry(set_id, alive, out_label, False))
                continue
            if selected and is_rename:
                out_label = update.new_label
            if selected and is_insert:
                insert_after = True
            stack.append(_Pass2Entry(set_id, alive, out_label, insert_after))
            yield StartElement(out_label, event.attrs)
        elif isinstance(event, EndElement):
            entry = stack.pop()
            if suppress_depth:
                suppress_depth -= 1
                continue
            if entry.insert_after:
                yield from content_events
            yield EndElement(entry.out_label)
        elif isinstance(event, TextEvent):
            if not suppress_depth:
                yield event
    yield EndDocument()


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def transform_sax_events(
    source: EventSource,
    query: TransformQuery,
    selecting: Optional[SelectingNFA] = None,
    filtering: Optional[FilteringNFA] = None,
) -> Iterator[SAXEvent]:
    """``twoPassSAX`` over an event source (called once per pass).

    Like :func:`repro.streaming.select.stream_select`, the source must
    be replayable; :class:`repro.xmltree.sax.TwoPassSource` raises a
    ``ValueError`` naming the two-pass requirement when it is not.
    """
    if selecting is None:
        selecting = build_selecting_nfa(query.path)
    if filtering is None:
        filtering = build_filtering_nfa(query.path)
    two_pass = TwoPassSource(source, "twoPassSAX")
    ld = pass1_collect_ld(two_pass.pass1(), filtering)
    return pass2_transform(two_pass.pass2(), selecting, query, ld)


def transform_sax_file(
    in_path: str,
    query: TransformQuery,
    out_path: Optional[str] = None,
    strip_whitespace: bool = True,
    selecting: Optional[SelectingNFA] = None,
    filtering: Optional[FilteringNFA] = None,
) -> Optional[str]:
    """``twoPassSAX`` from file to file (or to a returned string).

    This is the configuration of Fig. 14: memory stays bounded by
    document depth regardless of file size.  Prebuilt automata may be
    supplied (e.g. by a prepared statement) to skip reconstruction.
    """
    def source() -> Iterable[SAXEvent]:
        return iter_sax_file(in_path, strip_whitespace=strip_whitespace)

    result_events = transform_sax_events(source, query, selecting, filtering)
    if out_path is None:
        return events_to_text(result_events)
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write('<?xml version="1.0" encoding="utf-8"?>\n')
        events_to_text(result_events, handle)
        handle.write("\n")
    return None


def transform_sax(root: Element, query: TransformQuery) -> Element:
    """``twoPassSAX`` over an in-memory tree (events synthesized from
    the tree) — mainly for tests and cross-algorithm comparisons."""
    def source() -> Iterable[SAXEvent]:
        return tree_to_events(root)

    return events_to_tree(transform_sax_events(source, query))
