"""``QualDP`` — dynamic-programming qualifier evaluation (Fig. 7).

Given the truth vectors of all normalized (sub-)qualifiers at a node's
children (``csat``) and proper descendants (``dsat``), a constant
amount of work per expression computes the vector at the node itself.
The expression list comes from a :class:`~repro.xpath.normalize.
QualifierSpace`, whose interning order *is* the topologically sorted
``LQ`` (sub-expressions first), so one in-order sweep suffices.

Vectors are dense ``list[bool]`` indexed by ``nq_id``; at leaves both
``csat`` and ``dsat`` are all-false (the paper's ``csat⊥``/``dsat⊥``).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.xmltree.node import Element
from repro.xpath.evaluator import compare_value
from repro.xpath.normalize import (
    NAnd,
    NAttr,
    NChild,
    NDesc,
    NLabel,
    NNot,
    NOr,
    NSeq,
    NText,
    NTrue,
    QualifierSpace,
)


def qual_dp(
    space: QualifierSpace,
    label: str,
    own_text: str,
    attrs: Mapping[str, str],
    csat: Sequence[bool],
    dsat: Sequence[bool],
) -> list[bool]:
    """One node's ``satn`` vector (Fig. 7, all nine cases + attributes).

    Takes the node's local facts (label, own text, attributes) rather
    than the node itself so the streaming pass of Section 6 — which has
    no tree — can call it with stack-held values.
    """
    sat = [False] * len(space)
    for expr in space.expressions:
        i = expr.nq_id
        if isinstance(expr, NTrue):                       # case 1: ε
            sat[i] = True
        elif isinstance(expr, NSeq):                      # case 2: ε[q']/p
            sat[i] = sat[expr.cond.nq_id] and sat[expr.rest.nq_id]
        elif isinstance(expr, NChild):                    # case 3: */p
            sat[i] = csat[expr.inner.nq_id]
        elif isinstance(expr, NDesc):                     # case 4: //p
            sat[i] = sat[expr.inner.nq_id] or dsat[expr.inner.nq_id]
        elif isinstance(expr, NText):                     # case 5: ε op c
            sat[i] = compare_value(own_text, expr.op, expr.value)
        elif isinstance(expr, NLabel):                    # case 6: label() = l
            sat[i] = label == expr.label
        elif isinstance(expr, NAnd):                      # case 7
            sat[i] = sat[expr.left.nq_id] and sat[expr.right.nq_id]
        elif isinstance(expr, NOr):                       # case 8
            sat[i] = sat[expr.left.nq_id] or sat[expr.right.nq_id]
        elif isinstance(expr, NNot):                      # case 9
            sat[i] = not sat[expr.inner.nq_id]
        elif isinstance(expr, NAttr):                     # extension: @a [op c]
            value = attrs.get(expr.name)
            if value is None:
                sat[i] = False
            elif expr.op is None:
                sat[i] = True
            else:
                sat[i] = compare_value(value, expr.op, expr.value)
        else:  # pragma: no cover - the NQ language is closed
            raise TypeError(f"unknown normalized qualifier {expr!r}")
    return sat


def qual_dp_at(space: QualifierSpace, node: Element, csat, dsat) -> list[bool]:
    """Convenience wrapper taking a tree node."""
    return qual_dp(space, node.label, node.own_text(), node.attrs, csat, dsat)


def eval_nq_direct(node: Element, expr) -> bool:
    """Direct recursive semantics of one normalized expression.

    Exponentially slower than the DP on deep nestings — used only as a
    test oracle to validate ``qual_dp`` and the normalization itself.
    """
    if isinstance(expr, NTrue):
        return True
    if isinstance(expr, NSeq):
        return eval_nq_direct(node, expr.cond) and eval_nq_direct(node, expr.rest)
    if isinstance(expr, NChild):
        return any(eval_nq_direct(c, expr.inner) for c in node.child_elements())
    if isinstance(expr, NDesc):
        return any(eval_nq_direct(d, expr.inner) for d in node.descendants_or_self())
    if isinstance(expr, NText):
        return compare_value(node.own_text(), expr.op, expr.value)
    if isinstance(expr, NLabel):
        return node.label == expr.label
    if isinstance(expr, NAnd):
        return eval_nq_direct(node, expr.left) and eval_nq_direct(node, expr.right)
    if isinstance(expr, NOr):
        return eval_nq_direct(node, expr.left) or eval_nq_direct(node, expr.right)
    if isinstance(expr, NNot):
        return not eval_nq_direct(node, expr.inner)
    if isinstance(expr, NAttr):
        value = node.attrs.get(expr.name)
        if value is None:
            return False
        if expr.op is None:
            return True
        return compare_value(value, expr.op, expr.value)
    raise TypeError(f"unknown normalized qualifier {expr!r}")
