"""The Naive Method (Section 3.1, Fig. 2): rewriting into "standard
XQuery" with a node-set membership test.

The paper's rewriting evaluates ``$xp := doc(T)/p`` once, then rebuilds
the document with a recursive function that asks, at every element,
``some $x in $xp satisfies ($n is $x)`` — a *linear scan* of ``$xp``
per node unless the engine optimizes membership.  We reproduce that
cost model faithfully: the selected node list is scanned linearly at
each rebuilt element, giving the O(|T|²) worst-case data complexity
the paper reports when ``p`` is unselective (NAIVE's blow-up on U1/U4
in Figures 12-13).

Unlike the automaton algorithms, the rebuild traverses the *entire*
tree: there is no pruning.
"""

from __future__ import annotations

from repro.transform.query import TransformQuery
from repro.updates.ops import Update
from repro.xmltree.node import Element, Node
from repro.xpath.evaluator import evaluate


def transform_naive(root: Element, query: TransformQuery) -> Element:
    """Evaluate a transform query by the Fig. 2 rewriting semantics."""
    update = query.update
    xp = evaluate(root, update.path)  # the $xp node list

    def member(node: Element) -> bool:
        """``some $x in $xp satisfies ($n is $x)`` — deliberately linear."""
        for candidate in xp:
            if candidate is node:
                return True
        return False

    rebuilt = rebuild_with_membership(root, member, update)
    assert len(rebuilt) == 1 and rebuilt[0].is_element, "the root is never a match"
    return rebuilt[0]


def rebuild_with_membership(node: Node, member, update: Update) -> list[Node]:
    """The local:insert()-style full rebuild of Fig. 2, generalized to
    all four update kinds and parameterized by the membership test
    (linear scan for NAIVE, hash index for the ablation variant).

    Iterative, so document depth is not limited by the interpreter's
    recursion limit.  Deliberately rebuilds *every* node — the absence
    of pruning is part of the cost model being reproduced.
    """
    result: list[Node] = []
    # Frame: [node, rebuilt, matched, child-cursor, out].
    frames: list[list] = [[node, None, False, 0, result]]
    while frames:
        frame = frames[-1]
        current = frame[0]
        if frame[1] is None:
            if not current.is_element:
                frame[4].append(current)
                frames.pop()
                continue
            matched = member(current)
            if matched and not update.recurses_into_match:
                # delete/replace: the subtree is not reconstructed.
                frame[4].extend(
                    update.result_for_match(
                        Element(current.label, dict(current.attrs), [])
                    )
                )
                frames.pop()
                continue
            frame[1] = Element(current.label, dict(current.attrs), [])
            frame[2] = matched
        children = current.children
        cursor = frame[3]
        rebuilt = frame[1]
        while cursor < len(children) and not children[cursor].is_element:
            rebuilt.children.append(children[cursor])
            cursor += 1
        frame[3] = cursor + 1
        if cursor < len(children):
            frames.append([children[cursor], None, False, 0, rebuilt.children])
            continue
        if frame[2]:
            frame[4].extend(update.result_for_match(rebuilt))
        else:
            frame[4].append(rebuilt)
        frames.pop()
    return result
