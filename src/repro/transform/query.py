"""The transform-query object and its parser.

Syntax (from the W3C XQuery Update draft, as used throughout the
paper)::

    transform copy $a := doc("T0") modify do <update> return $a

The update's paths are written against the copy variable
(``delete $a//price``); the same variable must be returned.
"""

from __future__ import annotations

from typing import Optional

from repro.updates.ops import Update, find_keyword, parse_update
from repro.xpath import lexer as lx
from repro.xpath.lexer import TokenStream, XPathSyntaxError, tokenize


class TransformQuery:
    """A parsed transform query: a document reference plus an update."""

    def __init__(self, update: Update, doc: Optional[str] = None, var: str = "a"):
        self.update = update
        self.doc = doc  # document name inside doc("…"), informational
        self.var = var

    @property
    def path(self):
        """The X expression embedded in the update."""
        return self.update.path

    def __str__(self) -> str:
        doc = self.doc if self.doc is not None else "T0"
        return (
            f'transform copy ${self.var} := doc("{doc}") '
            f"modify do {self.update} return ${self.var}"
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"TransformQuery({self.update!s})"


def parse_transform_query(source: str) -> TransformQuery:
    """Parse the full transform-query syntax."""
    text = source.strip()
    try:
        modify_at = find_keyword(text, "modify")
    except XPathSyntaxError:
        raise XPathSyntaxError("expected 'modify' in transform query", 0) from None
    header = text[:modify_at]
    rest = text[modify_at + len("modify") :]
    var, doc = _parse_header(header)
    # The returned variable comes last, so split at the *last* 'return'.
    body, sep, tail = rest.rpartition("return")
    if not sep:
        raise XPathSyntaxError("expected 'return' in transform query", len(header))
    body = body.strip()
    if body == "do":
        body = ""
    elif body.startswith("do") and body[2:3].isspace():
        # "do" may be followed by any whitespace — multi-line queries
        # (read from files or stdin) put the update on its own line.
        body = body[3:].lstrip()
    update = parse_update(body)
    tail_tokens = TokenStream(tokenize(tail))
    tail_tokens.expect(lx.DOLLAR)
    returned = tail_tokens.expect(lx.NAME).value
    if returned != var:
        raise XPathSyntaxError(
            f"transform must return ${var}, not ${returned}", 0
        )
    if not tail_tokens.done():
        raise XPathSyntaxError("unexpected input after the returned variable", 0)
    return TransformQuery(update, doc=doc, var=var)


def _parse_header(header: str) -> tuple:
    """Parse ``transform copy $a := doc("T0")``; returns (var, doc)."""
    tokens = TokenStream(tokenize(header, keywords={"transform", "copy", "doc"}))
    tokens.expect_name("transform")
    tokens.expect_name("copy")
    tokens.expect(lx.DOLLAR)
    var = tokens.expect(lx.NAME).value
    tokens.expect(lx.ASSIGN)
    tokens.expect_name("doc")
    tokens.expect(lx.LPAREN)
    doc = tokens.expect(lx.STRING).value
    tokens.expect(lx.RPAREN)
    if not tokens.done():
        raise XPathSyntaxError(
            f"unexpected input {tokens.current.value!r} before 'modify'",
            tokens.current.pos,
        )
    return var, doc
