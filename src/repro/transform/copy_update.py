"""Copy-and-update evaluation: the ``GalaXUpdate`` baseline.

The conceptual semantics of a transform query, executed literally:
snapshot the whole document, run the embedded update destructively on
the snapshot, return the snapshot.  Always Θ(|T|) time *and* memory —
the paper observes this is exactly how Galax implements transform
queries ("taking a snapshot of XML files"), and why it runs out of
memory on larger XMark factors (Fig. 13).
"""

from __future__ import annotations

from repro.transform.query import TransformQuery
from repro.updates.apply import apply_update
from repro.xmltree.node import Element, deep_copy


def transform_copy_update(root: Element, query: TransformQuery) -> Element:
    """Evaluate ``query`` on the tree at *root* by copy-and-update.

    *root* is left untouched; the returned tree is fully independent.
    """
    snapshot = deep_copy(root)
    return apply_update(snapshot, query.update)
