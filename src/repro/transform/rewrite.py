"""The Fig. 2 rewriting, end to end: transform query → XQuery program.

Section 3.1 argues transform queries "can be readily supported by
available XQuery engines" by rewriting them into standard XQuery with a
recursive rebuild function.  This module performs that rewriting onto
our own XQuery program layer (:mod:`repro.xquery.program`), producing a
program whose text (`str(program)`) is the Fig. 2 shape::

    declare function local:apply($n, $xp)
    { if (fn:is-element($n))
      then element {fn:local-name($n)} {
             fn:attributes($n),
             for $c in fn:children($n) return local:apply($c, $xp),
             if (some $x in $xp satisfies $n is $x) then e else () }
      else $n };

    let $xp := doc()/p return local:apply(fn:doc(), $xp)

and whose evaluation *is* the Naive Method — including the linear
``some … satisfies … is …`` membership scan that makes it quadratic.
``transform_naive_xquery`` is therefore a sixth evaluation strategy,
equivalent to the other five (the test suite enforces it) but executed
entirely through the rewritten query, demonstrating the paper's
"no change to existing XQuery processors" pathway on our engine.
"""

from __future__ import annotations

from repro.transform.query import TransformQuery
from repro.updates.ops import Delete, Insert, Rename, Replace, Update
from repro.xmltree.node import Element
from repro.xpath.ast import Path
from repro.xquery.ast import (
    Conditional,
    ConstTree,
    EmptySeq,
    For,
    Let,
    Literal,
    PathFrom,
    Sequence,
    VarRef,
)
from repro.xquery.program import (
    BuiltinCall,
    ComputedElement,
    FunctionCall,
    FunctionDecl,
    IsSame,
    Program,
    SomeSatisfies,
    evaluate_program,
)


def _member_test(node_var: str) -> SomeSatisfies:
    """``some $x in $xp satisfies ($n is $x)`` — the Fig. 2 test."""
    return SomeSatisfies("x", VarRef("xp"), IsSame(VarRef(node_var), VarRef("x")))


def _recurse(child_var: str) -> FunctionCall:
    return FunctionCall("apply", [VarRef(child_var), VarRef("xp")])


def _fresh_content(update: Update) -> tuple:
    """(name-expr, content-expr) for the rebuilt element, per kind."""
    name_expr = BuiltinCall("local-name", [VarRef("n")])
    attrs = BuiltinCall("attributes", [VarRef("n")])
    if isinstance(update, Insert):
        content = Sequence([
            attrs,
            For("c", BuiltinCall("children", [VarRef("n")]), _recurse("c")),
            Conditional(
                _member_test("n"),
                BuiltinCall("copy", [ConstTree(update.content)]),
                EmptySeq(),
            ),
        ])
        return name_expr, content
    if isinstance(update, Delete):
        content = Sequence([
            attrs,
            For(
                "c",
                BuiltinCall("children", [VarRef("n")]),
                Conditional(_member_test("c"), EmptySeq(), _recurse("c")),
            ),
        ])
        return name_expr, content
    if isinstance(update, Replace):
        content = Sequence([
            attrs,
            For(
                "c",
                BuiltinCall("children", [VarRef("n")]),
                Conditional(
                    _member_test("c"),
                    BuiltinCall("copy", [ConstTree(update.content)]),
                    _recurse("c"),
                ),
            ),
        ])
        return name_expr, content
    if isinstance(update, Rename):
        name_expr = Conditional(
            _member_test("n"),
            Literal(update.new_label),
            BuiltinCall("local-name", [VarRef("n")]),
        )
        content = Sequence([
            attrs,
            For("c", BuiltinCall("children", [VarRef("n")]), _recurse("c")),
        ])
        return name_expr, content
    raise TypeError(f"unknown update {update!r}")


def rewrite_to_xquery(query: TransformQuery) -> Program:
    """Rewrite a transform query into an XQuery program (Fig. 2)."""
    update = query.update
    name_expr, content = _fresh_content(update)
    apply_decl = FunctionDecl(
        "apply",
        ["n", "xp"],
        Conditional(
            _effective(BuiltinCall("is-element", [VarRef("n")])),
            ComputedElement(name_expr, content),
            VarRef("n"),
        ),
    )
    body = Let(
        "xp",
        PathFrom(None, update.path),
        FunctionCall("apply", [BuiltinCall("doc", []), VarRef("xp")]),
    )
    return Program(declarations=[apply_decl], body=body)


def _effective(expr) -> "EffectiveBool":
    from repro.xquery.program import EffectiveBool

    return EffectiveBool(expr)


def transform_naive_xquery(root: Element, query: TransformQuery) -> Element:
    """Evaluate a transform query by running its Fig. 2 rewriting on
    the XQuery program layer — the paper's pathway for engines without
    update support."""
    program = rewrite_to_xquery(query)
    items = evaluate_program(program, root)
    assert len(items) == 1 and isinstance(items[0], Element)
    return items[0]
