"""The Top Down Method — Algorithm ``topDown`` (Section 3.3, Fig. 3).

A single recursive traversal driven by the selecting NFA:

* compute ``S' = nextStates(Mp, S, n)`` at each node;
* ``S' = ∅`` → the subtree cannot be affected: it is **shared** with
  the input, unvisited (the paper's "simply copied to the result" —
  and for delete, pruned "without loading" it);
* the final state in ``S'`` → the node is in ``r[[p]]``: apply the
  update's effect;
* otherwise recurse into the children with ``S'``.

``checkp`` is a strategy (see DESIGN.md): the default evaluates
qualifiers natively ("native engine", GENTOP in the experiments) —
through closures compiled once from the qualifier ASTs; —
``transform_twopass`` substitutes O(1) lookups into the ``bottomUp``
annotations (TD-BU).

Since the compiled-runtime refactor the traversal steps through the
automaton's lazy DFA (:mod:`repro.automata.dfa`): state sets are dense
interned ids and each ``(set, label)`` transition is a memoized table
hit instead of a recomputed ``nextStates``.  The original frozenset
runner is kept verbatim as :func:`topdown_subtree_nfa` — it is the
reference the property tests and ``benchmarks/bench_dfa.py`` compare
the compiled runtime against.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.automata.selecting import SelectingNFA, build_selecting_nfa
from repro.transform.query import TransformQuery
from repro.updates.ops import Update
from repro.xmltree.node import Element, Node
from repro.xpath.ast import Qual
from repro.xpath.evaluator import eval_qualifier

#: checkp strategy signature: (qualifier, node) -> bool.
CheckP = Callable[[Qual, Element], bool]


def native_checkp(qual: Qual, node: Element) -> bool:
    """Evaluate the qualifier directly (the host engine's job in the
    paper's GENTOP configuration).

    When this exact function is the ``checkp``, the DFA runner swaps in
    its per-state closures compiled from the same ASTs — identical
    semantics, no per-call AST dispatch.
    """
    return eval_qualifier(node, qual)


def transform_topdown(
    root: Element,
    query: TransformQuery,
    checkp: CheckP = native_checkp,
    nfa: Optional[SelectingNFA] = None,
) -> Element:
    """Evaluate a transform query with algorithm ``topDown``.

    The result shares unchanged subtrees with the input (both are to be
    treated as immutable).  A pre-built NFA may be supplied to amortize
    construction, e.g. across benchmark iterations — its lazy DFA
    tables come along with it.
    """
    if nfa is None:
        nfa = build_selecting_nfa(query.path)
    initial = nfa.initial_states_for(root)
    if not initial:
        return root  # nothing can match: the "update" is a no-op
    fresh = Element(root.label, dict(root.attrs), [])
    for child in root.children:
        fresh.children.extend(topdown_subtree(nfa, initial, query.update, child, checkp))
    return fresh


def topdown_subtree(
    nfa: SelectingNFA,
    states: frozenset,
    update: Update,
    node: Node,
    checkp: CheckP = native_checkp,
) -> list[Node]:
    """``topDown(Mp, S, Qt, n)`` of Fig. 3 on the compiled runtime:
    transform the subtree at *node* given the automaton states *states*
    reached at its parent.

    Returns the node list that replaces *node* in its parent — empty
    for a deleted node, the replacement for replace, and a single
    (possibly rebuilt) node otherwise.  Exposed separately because the
    Compose Method splices exactly this call into composed queries
    (Section 4, Example 4.3/Q3).  *states* stays a ``frozenset`` at the
    boundary (the adapter contract); internally the walk runs on
    interned DFA set ids.

    Iterative (explicit frames), so document depth is not limited by
    the interpreter's recursion limit.
    """
    dfa = nfa.dfa()
    # native_checkp (by identity) means: use the closures the DFA
    # compiled from the very same qualifier ASTs.
    plugged = None if checkp is native_checkp else checkp
    # The transition fast path is inlined (resolve symbol, hit the move
    # table, take the no-qualifier target) — this loop runs once per
    # document node and the call overhead of LazyDFA.step is measurable.
    sym_get, moves, compile_move = dfa.hot_path()
    apply_move = dfa.apply_move
    intern_label = dfa.symbols.intern
    empty_id = dfa.empty_id
    final_flags = dfa.final_flags
    recurses_into_match = update.recurses_into_match
    result_for_match = update.result_for_match
    result: list[Node] = []
    # Frame: [node, set-id, matched, rebuilt-children, cursor, out,
    #         children, child-count] — children/count cached so resumes
    #         after each child cost no len()/attribute reloads.
    frames: list[list] = [[node, dfa.intern_set(states), None, None, 0, result, None, 0]]
    while frames:
        frame = frames[-1]
        if frame[2] is None:  # first visit: run the automaton step
            current = frame[0]
            if not current.is_element:
                frame[5].append(current)
                frames.pop()
                continue
            label = current.label
            set_id = frame[1]
            move = moves[set_id].get(sym_get(label))
            if move is None:
                move = compile_move(set_id, intern_label(label))
            if not move.cond_sids:
                next_id = move.target0
            else:
                next_id = apply_move(move, current, plugged)
            if next_id == empty_id:
                # Untouched: share, do not copy (Fig. 3 lines 2-3).
                frame[5].append(current)
                frames.pop()
                continue
            matched = final_flags[next_id]
            if matched and not recurses_into_match:
                # delete/replace: prune the subtree without visiting it.
                frame[5].extend(
                    result_for_match(
                        Element(current.label, dict(current.attrs), [])
                    )
                )
                frames.pop()
                continue
            frame[1] = next_id
            frame[2] = matched
            attrs = current.attrs
            rebuilt = Element(label, dict(attrs) if attrs else {}, [])
            frame[3] = rebuilt
            children = current.children
            frame[6] = children
            frame[7] = len(children)
        else:
            rebuilt = frame[3]
            children = frame[6]
        cursor = frame[4]
        count = frame[7]
        out_children = rebuilt.children
        # Fast-forward over consecutive text children.
        while cursor < count and not children[cursor].is_element:
            out_children.append(children[cursor])
            cursor += 1
        frame[4] = cursor + 1
        if cursor < count:
            frames.append([children[cursor], frame[1], None, None, 0, out_children, None, 0])
            continue
        # All children processed: finish this node.
        if frame[2]:
            frame[5].extend(result_for_match(rebuilt))
        else:
            frame[5].append(rebuilt)
        frames.pop()
    return result


# ----------------------------------------------------------------------
# The frozenset reference runner (the seed implementation)
# ----------------------------------------------------------------------


def transform_topdown_nfa(
    root: Element,
    query: TransformQuery,
    checkp: CheckP = native_checkp,
    nfa: Optional[SelectingNFA] = None,
) -> Element:
    """``topDown`` on the original frozenset ``nextStates`` runner.

    Semantically identical to :func:`transform_topdown`; kept as the
    baseline the compiled runtime is validated and benchmarked against
    (``tests/test_dfa_properties.py``, ``benchmarks/bench_dfa.py``).
    """
    if nfa is None:
        nfa = build_selecting_nfa(query.path)
    initial = nfa.initial_states_for(root)
    if not initial:
        return root
    fresh = Element(root.label, dict(root.attrs), [])
    for child in root.children:
        fresh.children.extend(
            topdown_subtree_nfa(nfa, initial, query.update, child, checkp)
        )
    return fresh


def topdown_subtree_nfa(
    nfa: SelectingNFA,
    states: frozenset,
    update: Update,
    node: Node,
    checkp: CheckP = native_checkp,
) -> list[Node]:
    """The seed's frozenset ``topDown(Mp, S, Qt, n)`` — see
    :func:`transform_topdown_nfa`."""
    result: list[Node] = []
    # Frame: [node, states-at-node, matched, rebuilt, child-cursor, out].
    frames: list[list] = [[node, states, None, None, 0, result]]
    while frames:
        frame = frames[-1]
        current = frame[0]
        if frame[2] is None:  # first visit: run the automaton step
            if not current.is_element:
                frame[5].append(current)
                frames.pop()
                continue
            next_states = nfa.next_states(
                frame[1], current.label, lambda q, n=current: checkp(q, n)
            )
            if not next_states:
                # Untouched: share, do not copy (Fig. 3 lines 2-3).
                frame[5].append(current)
                frames.pop()
                continue
            matched = nfa.selects(next_states)
            if matched and not update.recurses_into_match:
                # delete/replace: prune the subtree without visiting it.
                frame[5].extend(
                    update.result_for_match(
                        Element(current.label, dict(current.attrs), [])
                    )
                )
                frames.pop()
                continue
            frame[1] = next_states
            frame[2] = matched
            frame[3] = Element(current.label, dict(current.attrs), [])
        children = current.children
        cursor = frame[4]
        rebuilt = frame[3]
        # Fast-forward over consecutive text children.
        while cursor < len(children) and not children[cursor].is_element:
            rebuilt.children.append(children[cursor])
            cursor += 1
        frame[4] = cursor + 1
        if cursor < len(children):
            frames.append([children[cursor], frame[1], None, None, 0, rebuilt.children])
            continue
        # All children processed: finish this node.
        if frame[2]:
            frame[5].extend(update.result_for_match(rebuilt))
        else:
            frame[5].append(rebuilt)
        frames.pop()
    return result
