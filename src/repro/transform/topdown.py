"""The Top Down Method — Algorithm ``topDown`` (Section 3.3, Fig. 3).

A single recursive traversal driven by the selecting NFA:

* compute ``S' = nextStates(Mp, S, n)`` at each node;
* ``S' = ∅`` → the subtree cannot be affected: it is **shared** with
  the input, unvisited (the paper's "simply copied to the result" —
  and for delete, pruned "without loading" it);
* the final state in ``S'`` → the node is in ``r[[p]]``: apply the
  update's effect;
* otherwise recurse into the children with ``S'``.

``checkp`` is a strategy (see DESIGN.md): the default evaluates
qualifiers with the reference evaluator at the node ("native engine",
GENTOP in the experiments); ``transform_twopass`` substitutes O(1)
lookups into the ``bottomUp`` annotations (TD-BU).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.automata.selecting import SelectingNFA, build_selecting_nfa
from repro.transform.query import TransformQuery
from repro.updates.ops import Update
from repro.xmltree.node import Element, Node
from repro.xpath.ast import Qual
from repro.xpath.evaluator import eval_qualifier

#: checkp strategy signature: (qualifier, node) -> bool.
CheckP = Callable[[Qual, Element], bool]


def native_checkp(qual: Qual, node: Element) -> bool:
    """Evaluate the qualifier directly (the host engine's job in the
    paper's GENTOP configuration)."""
    return eval_qualifier(node, qual)


def transform_topdown(
    root: Element,
    query: TransformQuery,
    checkp: CheckP = native_checkp,
    nfa: Optional[SelectingNFA] = None,
) -> Element:
    """Evaluate a transform query with algorithm ``topDown``.

    The result shares unchanged subtrees with the input (both are to be
    treated as immutable).  A pre-built NFA may be supplied to amortize
    construction, e.g. across benchmark iterations.
    """
    if nfa is None:
        nfa = build_selecting_nfa(query.path)
    initial = nfa.initial_states_for(root)
    if not initial:
        return root  # nothing can match: the "update" is a no-op
    fresh = Element(root.label, dict(root.attrs), [])
    for child in root.children:
        fresh.children.extend(topdown_subtree(nfa, initial, query.update, child, checkp))
    return fresh


def topdown_subtree(
    nfa: SelectingNFA,
    states: frozenset,
    update: Update,
    node: Node,
    checkp: CheckP = native_checkp,
) -> list[Node]:
    """``topDown(Mp, S, Qt, n)`` of Fig. 3: transform the subtree at
    *node* given the automaton states *states* reached at its parent.

    Returns the node list that replaces *node* in its parent — empty
    for a deleted node, the replacement for replace, and a single
    (possibly rebuilt) node otherwise.  Exposed separately because the
    Compose Method splices exactly this call into composed queries
    (Section 4, Example 4.3/Q3).

    Iterative (explicit frames), so document depth is not limited by
    the interpreter's recursion limit.
    """
    result: list[Node] = []
    # Frame: [node, states-at-node, matched, rebuilt, child-cursor, out].
    frames: list[list] = [[node, states, None, None, 0, result]]
    while frames:
        frame = frames[-1]
        current = frame[0]
        if frame[2] is None:  # first visit: run the automaton step
            if not current.is_element:
                frame[5].append(current)
                frames.pop()
                continue
            next_states = nfa.next_states(
                frame[1], current.label, lambda q, n=current: checkp(q, n)
            )
            if not next_states:
                # Untouched: share, do not copy (Fig. 3 lines 2-3).
                frame[5].append(current)
                frames.pop()
                continue
            matched = nfa.selects(next_states)
            if matched and not update.recurses_into_match:
                # delete/replace: prune the subtree without visiting it.
                frame[5].extend(
                    update.result_for_match(
                        Element(current.label, dict(current.attrs), [])
                    )
                )
                frames.pop()
                continue
            frame[1] = next_states
            frame[2] = matched
            frame[3] = Element(current.label, dict(current.attrs), [])
        children = current.children
        cursor = frame[4]
        rebuilt = frame[3]
        # Fast-forward over consecutive text children.
        while cursor < len(children) and not children[cursor].is_element:
            rebuilt.children.append(children[cursor])
            cursor += 1
        frame[4] = cursor + 1
        if cursor < len(children):
            frames.append([children[cursor], frame[1], None, None, 0, rebuilt.children])
            continue
        # All children processed: finish this node.
        if frame[2]:
            frame[5].extend(update.result_for_match(rebuilt))
        else:
            frame[5].append(rebuilt)
        frames.pop()
    return result
