"""Ablation variants of the evaluation algorithms.

These isolate the two levers the paper credits for its speedups, so the
benchmarks can measure each one's contribution separately:

* :func:`transform_topdown_no_pruning` — ``topDown`` with the
  empty-state-set shortcut disabled (Fig. 3 lines 2-3 removed): every
  subtree is rebuilt.  The gap to the real ``topDown`` is the value of
  NFA-driven pruning.
* :func:`transform_naive_indexed` — the Naive rewriting with the
  membership test ``n ∈ $xp`` answered by a hash set instead of the
  paper's linear scan.  This models an XQuery engine that *does*
  optimize node-identity membership (Section 3.1 conjectures the
  quadratic cost disappears then) — the gap to plain ``NAIVE`` is the
  cost of the unoptimized membership test, and the remaining gap to
  ``topDown`` is the cost of rebuilding untouched subtrees.
"""

from __future__ import annotations

from typing import Optional

from repro.automata.selecting import SelectingNFA, build_selecting_nfa
from repro.transform.query import TransformQuery
from repro.transform.topdown import CheckP, native_checkp
from repro.updates.ops import Update
from repro.xmltree.node import Element, Node
from repro.xpath.evaluator import evaluate


def transform_topdown_no_pruning(
    root: Element,
    query: TransformQuery,
    checkp: CheckP = native_checkp,
    nfa: Optional[SelectingNFA] = None,
) -> Element:
    """``topDown`` without subtree pruning (ablation)."""
    if nfa is None:
        nfa = build_selecting_nfa(query.path)
    initial = nfa.initial_states_for(root)
    fresh = Element(root.label, dict(root.attrs), [])
    for child in root.children:
        fresh.children.extend(
            _subtree_no_pruning(nfa, initial, query.update, child, checkp)
        )
    return fresh


def _subtree_no_pruning(
    nfa: SelectingNFA,
    states: frozenset,
    update: Update,
    node: Node,
    checkp: CheckP,
) -> list[Node]:
    if not node.is_element:
        return [node]
    next_states = nfa.next_states(states, node.label, lambda q: checkp(q, node))
    matched = bool(next_states) and nfa.selects(next_states)
    if matched and not update.recurses_into_match:
        return update.result_for_match(Element(node.label, dict(node.attrs), []))
    # The ablated step: rebuild unconditionally, even when next_states
    # is empty and nothing below can change.
    fresh = Element(node.label, dict(node.attrs), [])
    for child in node.children:
        fresh.children.extend(
            _subtree_no_pruning(nfa, next_states, update, child, checkp)
        )
    if matched:
        return update.result_for_match(fresh)
    return [fresh]


def transform_naive_indexed(root: Element, query: TransformQuery) -> Element:
    """The Naive rewriting with an O(1) membership test (ablation)."""
    from repro.transform.naive import rebuild_with_membership

    update = query.update
    xp_ids = {id(node) for node in evaluate(root, update.path)}
    rebuilt = rebuild_with_membership(root, lambda n: id(n) in xp_ids, update)
    assert len(rebuilt) == 1 and rebuilt[0].is_element
    return rebuilt[0]
