"""Chained transform queries — a first step toward the paper's future
work on "more involved updates" (Section 9).

The W3C draft allows several updates inside one ``modify`` clause.  A
:class:`TransformChain` applies a *sequence* of updates, each against
the result of the previous one (the snapshot semantics of consecutive
transform queries)::

    transform copy $a := doc("T") modify do (
        delete $a//price,
        rename $a//sname as vendor
    ) return $a

Evaluation composes the single-update algorithms; any of the five
strategies can be used per stage.  Note the semantics is *sequential*
(update i+1 sees update i's result), which is exactly what nesting
transform queries would give — not the W3C snapshot-parallel semantics
of a multi-expression pending update list; DESIGN.md discusses the
difference.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.transform.query import TransformQuery, parse_transform_query
from repro.transform.topdown import transform_topdown
from repro.updates.ops import Update, parse_update
from repro.xmltree.node import Element
from repro.xpath.lexer import XPathSyntaxError


class TransformChain:
    """A transform query with a sequence of embedded updates."""

    def __init__(self, updates: list, doc: Optional[str] = None, var: str = "a"):
        if not updates:
            raise ValueError("a transform chain needs at least one update")
        self.updates: list[Update] = list(updates)
        self.doc = doc
        self.var = var

    def stages(self) -> list[TransformQuery]:
        """The chain as single-update transform queries."""
        return [TransformQuery(u, doc=self.doc, var=self.var) for u in self.updates]

    def __str__(self) -> str:
        doc = self.doc if self.doc is not None else "T0"
        body = ", ".join(str(u) for u in self.updates)
        return (
            f'transform copy ${self.var} := doc("{doc}") '
            f"modify do ({body}) return ${self.var}"
        )

    def __len__(self) -> int:
        return len(self.updates)


def transform_chain(
    root: Element,
    chain: TransformChain,
    transform: Callable = transform_topdown,
) -> Element:
    """Evaluate a chained transform: each stage on the previous result.

    Intermediate results share untouched subtrees (every stage is a
    pure transform), so the chain is still copy-free where updates do
    not reach.
    """
    current = root
    for stage in chain.stages():
        current = transform(current, stage)
    return current


def parse_transform_chain(source: str) -> TransformChain:
    """Parse the parenthesized multi-update transform syntax.

    Single-update syntax parses to a one-stage chain, so this accepts a
    superset of :func:`~repro.transform.query.parse_transform_query`'s
    language.
    """
    from repro.transform.query import _parse_header
    from repro.updates.ops import find_keyword

    text = source.strip()
    try:
        modify_at = find_keyword(text, "modify")
    except XPathSyntaxError:
        raise XPathSyntaxError("expected 'modify' in transform query", 0) from None
    var, doc = _parse_header(text[:modify_at])
    rest = text[modify_at + len("modify") :].strip()
    if rest.startswith("do"):
        rest = rest[2:].strip()
    if not rest.startswith("("):
        single = parse_transform_query(source)
        return TransformChain([single.update], doc=single.doc, var=single.var)
    close_at = _matching_paren(rest, 0)
    updates = _parse_update_list(rest[1:close_at])
    tail = rest[close_at + 1 :].split()
    if tail != ["return", f"${var}"]:
        raise XPathSyntaxError(f"expected 'return ${var}' after the update list", close_at)
    return TransformChain(updates, doc=doc, var=var)


def _matching_paren(text: str, open_at: int) -> int:
    depth = 0
    in_string = None
    for index in range(open_at, len(text)):
        ch = text[index]
        if in_string:
            if ch == in_string:
                in_string = None
            continue
        if ch in "\"'":
            in_string = ch
        elif ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                return index
    raise XPathSyntaxError("unbalanced parentheses in transform query", open_at)


def _split_top_level(body: str) -> list:
    """Split on commas outside brackets, parens and strings.

    Comparison operators make ``<``/``>`` untrackable as brackets, so a
    comma inside an XML literal's text can still split here; the caller
    re-joins segments until each parses (see :func:`_parse_update_list`).
    """
    parts: list = []
    depth = 0
    in_string = None
    current: list = []
    for ch in body:
        if in_string:
            current.append(ch)
            if ch == in_string:
                in_string = None
            continue
        if ch in "\"'":
            in_string = ch
        elif ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
            continue
        current.append(ch)
    if "".join(current).strip():
        parts.append("".join(current))
    return parts


def _parse_update_list(body: str) -> list:
    """Parse a comma-separated update list, re-joining segments whose
    commas turned out to be XML text content rather than separators."""
    updates: list = []
    pending = ""
    for segment in _split_top_level(body):
        pending = segment if not pending else f"{pending},{segment}"
        try:
            updates.append(parse_update(pending.strip()))
        except XPathSyntaxError:
            continue  # the comma was inside content; take more input
        pending = ""
    if pending.strip():
        # Surface the real error for the unparseable remainder.
        updates.append(parse_update(pending.strip()))
    if not updates:
        raise XPathSyntaxError("empty update list in transform query", 0)
    return updates
