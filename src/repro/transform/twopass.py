"""Algorithm ``twoPass`` = ``bottomUp`` + ``topDown`` (Fig. 10) —
"TD-BU" in the experiments.

Pass 1 annotates the tree with every qualifier's truth value
(``bottomUp``); pass 2 runs ``topDown`` whose ``checkp`` is now an O(1)
annotation lookup.  Total cost O(|T|·|p|²) combined / linear data
complexity — and optimal: two passes are necessary for the embedded
XPath evaluation alone (Koch, VLDB'03, as cited by the paper).

Both passes run on the compiled runtime: ``bottomUp`` steps the
filtering NFA's lazy DFA unfiltered, and ``topDown`` steps the
selecting NFA's DFA with the annotation ``checkp`` plugged into the
qualifier positions of each memoized move.
"""

from __future__ import annotations

from typing import Optional

from repro.automata.filtering import FilteringNFA, build_filtering_nfa
from repro.automata.selecting import SelectingNFA, build_selecting_nfa
from repro.transform.bottomup import bottom_up_annotate
from repro.transform.query import TransformQuery
from repro.transform.topdown import native_checkp, transform_topdown
from repro.xmltree.node import Element


def transform_twopass(
    root: Element,
    query: TransformQuery,
    selecting: Optional[SelectingNFA] = None,
    filtering: Optional[FilteringNFA] = None,
) -> Element:
    """Evaluate a transform query with the two-pass algorithm."""
    if selecting is None:
        selecting = build_selecting_nfa(query.path)
    if filtering is None:
        filtering = build_filtering_nfa(query.path)
    if len(filtering.space) == 0:
        # No qualifiers at all: pass 1 would compute nothing; topDown
        # with the (never-called) native checker is already optimal.
        return transform_topdown(root, query, checkp=native_checkp, nfa=selecting)
    annotations = bottom_up_annotate(root, nfa=filtering)
    return transform_topdown(root, query, checkp=annotations.checkp, nfa=selecting)
