"""Transform queries and their evaluation algorithms.

A transform query (Section 2)::

    transform copy $a := doc("T0") modify do u($a) return $a

returns the tree that update ``u`` *would* produce on ``T0``, without
touching ``T0``.  Five evaluation strategies, matching the paper's
experimental line-up (Figures 12-14):

==============  =====================================  ==========
paper name      function                               section
==============  =====================================  ==========
GalaXUpdate     :func:`transform_copy_update`          (baseline)
NAIVE           :func:`transform_naive`                3.1
GENTOP          :func:`transform_topdown`              3.3
TD-BU           :func:`transform_twopass`              5
twoPassSAX      :func:`transform_sax` (+ file/event    6
                variants in ``sax_twopass``)
==============  =====================================  ==========

All five return identical trees; the test suite enforces this on the
paper's examples, the XMark workload and random inputs.
"""

from repro.transform.query import TransformQuery, parse_transform_query
from repro.transform.chain import (
    TransformChain,
    parse_transform_chain,
    transform_chain,
)
from repro.transform.copy_update import transform_copy_update
from repro.transform.naive import transform_naive
from repro.transform.topdown import transform_topdown
from repro.transform.twopass import transform_twopass
from repro.transform.sax_twopass import (
    transform_sax,
    transform_sax_events,
    transform_sax_file,
)
from repro.transform.rewrite import rewrite_to_xquery, transform_naive_xquery

__all__ = [
    "TransformChain",
    "TransformQuery",
    "parse_transform_chain",
    "parse_transform_query",
    "transform_chain",
    "rewrite_to_xquery",
    "transform_naive_xquery",
    "transform_copy_update",
    "transform_naive",
    "transform_sax",
    "transform_sax_events",
    "transform_sax_file",
    "transform_topdown",
    "transform_twopass",
]
