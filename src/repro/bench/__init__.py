"""Benchmark harness: regenerates every figure of the paper's
evaluation (Section 7).

* :mod:`repro.bench.harness` — timing utilities, dataset cache, and the
  method registry mapping the paper's names (GalaXUpdate, NAIVE, TD-BU,
  GENTOP, twoPassSAX) to our implementations.
* :mod:`repro.bench.figures` — one driver per figure (12, 13, 14, 15)
  printing paper-style series; also runnable as
  ``python -m repro.bench.figures <fig12|fig13|fig14|fig15|all>``.

The pytest-benchmark suites under ``benchmarks/`` wrap the same
workloads for per-run statistics.
"""

from repro.bench.harness import (
    METHODS,
    dataset,
    dataset_stats,
    time_call,
)

__all__ = ["METHODS", "dataset", "dataset_stats", "time_call"]
