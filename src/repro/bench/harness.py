"""Shared benchmarking machinery for the Section-7 experiments.

Two cross-cutting policies every benchmark routes through:

* **Explicit seeds** — all XMark generation in ``benchmarks/`` passes
  :data:`DATASET_SEED` explicitly, so perf numbers are run-to-run
  comparable (same bytes, same tree shape, same match counts).
* **Smoke mode** — with ``REPRO_BENCH_SMOKE=1`` in the environment,
  :func:`smoke_factor` caps document sizes and :func:`smoke_rounds`
  caps repetition counts, and the acceptance-bar assertions in the
  benchmark suites are relaxed.  CI runs the whole ``benchmarks/``
  directory this way on every push: the perf-path code is executed end
  to end (so it cannot silently rot) without paying benchmark time.
"""

from __future__ import annotations

import gc
import os
import time
from typing import Callable, Optional

from repro.transform import (
    transform_copy_update,
    transform_naive,
    transform_sax,
    transform_topdown,
    transform_twopass,
)
from repro.xmark.generator import generate, document_stats
from repro.xmltree.node import Element

#: True when the benchmarks should run tiny (see module docstring).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: The seed all benchmark document generation passes explicitly.
DATASET_SEED = 42


def smoke_factor(factor: float, cap: float = 0.002) -> float:
    """Cap an XMark factor in smoke mode; identity otherwise."""
    return min(factor, cap) if SMOKE else factor


def smoke_rounds(rounds: int, cap: int = 2) -> int:
    """Cap a repetition count in smoke mode; identity otherwise."""
    return min(rounds, cap) if SMOKE else rounds


#: The five evaluation methods, keyed by the paper's names (Fig. 12).
METHODS: dict[str, Callable] = {
    "GalaXUpdate": transform_copy_update,  # snapshot copy + in-place update
    "NAIVE": transform_naive,              # Fig. 2 rewriting, linear membership scan
    "TD-BU": transform_twopass,            # bottomUp + topDown (Section 5)
    "GENTOP": transform_topdown,           # topDown with native qualifiers (Section 3)
    "twoPassSAX": transform_sax,           # Section 6, over synthesized events
}

#: Method order used in tables, matching the figure legends.
METHOD_ORDER = ["GalaXUpdate", "NAIVE", "TD-BU", "GENTOP", "twoPassSAX"]

_dataset_cache: dict[tuple, Element] = {}
_stats_cache: dict[tuple, dict] = {}


def dataset(factor: float, seed: int = 42) -> Element:
    """A cached XMark-shaped document at the given factor."""
    key = (factor, seed)
    if key not in _dataset_cache:
        _dataset_cache[key] = generate(factor, seed)
    return _dataset_cache[key]


def dataset_stats(factor: float, seed: int = 42) -> dict:
    key = (factor, seed)
    if key not in _stats_cache:
        _stats_cache[key] = document_stats(dataset(factor, seed))
    return _stats_cache[key]


def clear_datasets() -> None:
    """Free cached documents (the Fig. 14 runs use large files)."""
    _dataset_cache.clear()
    _stats_cache.clear()


def time_call(fn: Callable, *args, repeat: int = 3, **kwargs) -> float:
    """Best-of-*repeat* wall-clock seconds for ``fn(*args, **kwargs)``.

    Best-of matches how short benchmark runs are usually reported: it
    suppresses scheduler noise without averaging in warm-up effects.
    """
    best: Optional[float] = None
    for _ in range(repeat):
        gc.collect()
        start = time.perf_counter()
        fn(*args, **kwargs)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def format_table(title: str, headers: list, rows: list) -> str:
    """Render an aligned text table (the harness's figure output)."""
    widths = [len(h) for h in headers]
    text_rows = []
    for row in rows:
        cells = [cell if isinstance(cell, str) else f"{cell:.4f}" for cell in row]
        text_rows.append(cells)
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in text_rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)))
    return "\n".join(lines)
