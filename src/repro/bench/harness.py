"""Shared benchmarking machinery for the Section-7 experiments."""

from __future__ import annotations

import gc
import time
from typing import Callable, Optional

from repro.transform import (
    transform_copy_update,
    transform_naive,
    transform_sax,
    transform_topdown,
    transform_twopass,
)
from repro.xmark.generator import generate, document_stats
from repro.xmltree.node import Element

#: The five evaluation methods, keyed by the paper's names (Fig. 12).
METHODS: dict[str, Callable] = {
    "GalaXUpdate": transform_copy_update,  # snapshot copy + in-place update
    "NAIVE": transform_naive,              # Fig. 2 rewriting, linear membership scan
    "TD-BU": transform_twopass,            # bottomUp + topDown (Section 5)
    "GENTOP": transform_topdown,           # topDown with native qualifiers (Section 3)
    "twoPassSAX": transform_sax,           # Section 6, over synthesized events
}

#: Method order used in tables, matching the figure legends.
METHOD_ORDER = ["GalaXUpdate", "NAIVE", "TD-BU", "GENTOP", "twoPassSAX"]

_dataset_cache: dict[tuple, Element] = {}
_stats_cache: dict[tuple, dict] = {}


def dataset(factor: float, seed: int = 42) -> Element:
    """A cached XMark-shaped document at the given factor."""
    key = (factor, seed)
    if key not in _dataset_cache:
        _dataset_cache[key] = generate(factor, seed)
    return _dataset_cache[key]


def dataset_stats(factor: float, seed: int = 42) -> dict:
    key = (factor, seed)
    if key not in _stats_cache:
        _stats_cache[key] = document_stats(dataset(factor, seed))
    return _stats_cache[key]


def clear_datasets() -> None:
    """Free cached documents (the Fig. 14 runs use large files)."""
    _dataset_cache.clear()
    _stats_cache.clear()


def time_call(fn: Callable, *args, repeat: int = 3, **kwargs) -> float:
    """Best-of-*repeat* wall-clock seconds for ``fn(*args, **kwargs)``.

    Best-of matches how short benchmark runs are usually reported: it
    suppresses scheduler noise without averaging in warm-up effects.
    """
    best: Optional[float] = None
    for _ in range(repeat):
        gc.collect()
        start = time.perf_counter()
        fn(*args, **kwargs)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def format_table(title: str, headers: list, rows: list) -> str:
    """Render an aligned text table (the harness's figure output)."""
    widths = [len(h) for h in headers]
    text_rows = []
    for row in rows:
        cells = [cell if isinstance(cell, str) else f"{cell:.4f}" for cell in row]
        text_rows.append(cells)
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in text_rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)))
    return "\n".join(lines)
