"""Experiment drivers: one function per figure of Section 7.

Each driver returns structured results (and prints a paper-style
table), so EXPERIMENTS.md can record paper-vs-measured shapes.  Run
from the command line::

    python -m repro.bench.figures fig12
    python -m repro.bench.figures fig13 fig15
    python -m repro.bench.figures all

Scale note: the paper's testbed used XMark factors 0.02-0.34 (2.2-38MB
files from xmlgen's prose-heavy output) and factors 2-10 for the
streaming experiment.  Our generator's entity text is leaner and pure
Python is slower than Qizx's Java, so default factors are chosen to
keep the full suite in CPU-minutes while preserving every comparison
the figures make; pass larger factors to push further.
"""

from __future__ import annotations

import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

from repro.bench.harness import (
    DATASET_SEED,
    METHOD_ORDER,
    METHODS,
    clear_datasets,
    dataset,
    dataset_stats,
    format_table,
    time_call,
)
from repro.compose import compose, evaluate_composed, naive_compose
from repro.transform.sax_twopass import transform_sax_file
from repro.xmark.generator import write_xmark_file
from repro.xmark.queries import (
    QUERY_IDS,
    composition_pairs,
    insert_transform,
)

#: Default factors: Fig. 12 uses the smallest Fig. 13 factor, as in the
#: paper (its 2.22MB file is the factor-0.02 dataset).
FIG12_FACTOR = 0.01
FIG13_FACTORS = [0.002, 0.005, 0.01, 0.02, 0.04]
FIG13_QUERIES = ["U2", "U4", "U7", "U10"]
FIG14_FACTORS = [0.05, 0.1, 0.2, 0.4, 0.8]
FIG14_QUERIES = ["U2", "U4", "U7", "U10"]
FIG15_FACTORS = [0.002, 0.005, 0.01, 0.02, 0.04]


def fig12(factor: float = FIG12_FACTOR, repeat: int = 3) -> dict:
    """Fig. 12: execution time of the five methods on U1-U10."""
    tree = dataset(factor, seed=DATASET_SEED)
    stats = dataset_stats(factor)
    results: dict = {"factor": factor, "elements": stats["elements"], "times": {}}
    for uid in QUERY_IDS:
        query = insert_transform(uid)
        results["times"][uid] = {}
        for method in METHOD_ORDER:
            seconds = time_call(METHODS[method], tree, query, repeat=repeat)
            results["times"][uid][method] = seconds
    rows = [
        [uid] + [results["times"][uid][m] for m in METHOD_ORDER]
        for uid in QUERY_IDS
    ]
    print(format_table(
        f"Fig. 12 — insert transform queries, factor {factor} "
        f"({stats['elements']} elements); seconds",
        ["query"] + METHOD_ORDER,
        rows,
    ))
    return results


def fig13(
    factors: list = FIG13_FACTORS,
    queries: list = FIG13_QUERIES,
    repeat: int = 3,
) -> dict:
    """Fig. 13(a-d): scalability with file size for U2, U4, U7, U10."""
    results: dict = {"factors": list(factors), "times": {}}
    for uid in queries:
        query = insert_transform(uid)
        results["times"][uid] = {method: [] for method in METHOD_ORDER}
        for factor in factors:
            tree = dataset(factor, seed=DATASET_SEED)
            for method in METHOD_ORDER:
                seconds = time_call(METHODS[method], tree, query, repeat=repeat)
                results["times"][uid][method].append(seconds)
    for uid in queries:
        rows = []
        for index, factor in enumerate(factors):
            stats = dataset_stats(factor)
            rows.append(
                [f"{factor}", f"{stats['elements']}"]
                + [results["times"][uid][m][index] for m in METHOD_ORDER]
            )
        print(format_table(
            f"Fig. 13 — scalability, query {uid}; seconds",
            ["factor", "elements"] + METHOD_ORDER,
            rows,
        ))
        print()
    return results


def fig14(
    factors: list = FIG14_FACTORS,
    queries: list = FIG14_QUERIES,
    workdir: str = None,
) -> dict:
    """Fig. 14: twoPassSAX on large files — linear time, flat memory.

    Documents are stream-generated to disk and transformed file-to-file,
    so neither side of the pipeline ever holds the document in memory;
    tracemalloc records the peak Python heap during the transform.
    """
    results: dict = {"factors": list(factors), "sizes": {}, "times": {}, "memory": {}}
    base = Path(workdir) if workdir else Path(tempfile.mkdtemp(prefix="xmark-fig14-"))
    base.mkdir(parents=True, exist_ok=True)
    rows = []
    for factor in factors:
        in_path = base / f"xmark-{factor}.xml"
        if not in_path.exists():
            write_xmark_file(str(in_path), factor, seed=DATASET_SEED)
        size_mb = in_path.stat().st_size / (1024 * 1024)
        results["sizes"][factor] = size_mb
        results["times"][factor] = {}
        for uid in queries:
            query = insert_transform(uid)
            out_path = base / f"out-{uid}-{factor}.xml"
            start = time.perf_counter()
            transform_sax_file(str(in_path), query, str(out_path))
            elapsed = time.perf_counter() - start
            out_path.unlink(missing_ok=True)
            results["times"][factor][uid] = elapsed
        # Memory is sampled in a separate run (tracemalloc roughly
        # triples runtime, which would distort the timing series).
        out_path = base / f"out-mem-{factor}.xml"
        tracemalloc.start()
        transform_sax_file(str(in_path), insert_transform(queries[-1]), str(out_path))
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        out_path.unlink(missing_ok=True)
        results["memory"][factor] = peak / (1024 * 1024)
        rows.append(
            [f"{factor}", f"{size_mb:.2f}MB"]
            + [results["times"][factor][u] for u in queries]
            + [f"{results['memory'][factor]:.2f}MB"]
        )
    print(format_table(
        "Fig. 14 — twoPassSAX on large files; seconds per query, peak heap",
        ["factor", "size"] + list(queries) + ["peak mem"],
        rows,
    ))
    return results


def fig15(factors: list = FIG15_FACTORS, repeat: int = 3) -> dict:
    """Fig. 15(a-d): Naive Composition vs the Compose Method."""
    results: dict = {"factors": list(factors), "times": {}}
    for transform_id, user_id, transform_query, user_query in composition_pairs():
        pair_key = f"({transform_id},{user_id})"
        composed = compose(user_query, transform_query)
        naive_times, compose_times = [], []
        for factor in factors:
            tree = dataset(factor, seed=DATASET_SEED)
            naive_times.append(time_call(
                naive_compose, tree, user_query, transform_query, repeat=repeat
            ))
            compose_times.append(time_call(
                evaluate_composed, tree, composed, repeat=repeat
            ))
        results["times"][pair_key] = {
            "Naive Composition": naive_times,
            "Compose": compose_times,
        }
        rows = [
            [f"{factor}", naive_times[i], compose_times[i],
             f"{naive_times[i] / compose_times[i]:.1f}x"]
            for i, factor in enumerate(factors)
        ]
        print(format_table(
            f"Fig. 15 — composition pair {pair_key}; seconds",
            ["factor", "Naive Composition", "Compose", "speedup"],
            rows,
        ))
        print()
    return results


DRIVERS = {"fig12": fig12, "fig13": fig13, "fig14": fig14, "fig15": fig15}


def main(argv: list) -> int:
    wanted = argv or ["all"]
    if "all" in wanted:
        wanted = ["fig12", "fig13", "fig14", "fig15"]
    for name in wanted:
        driver = DRIVERS.get(name)
        if driver is None:
            print(f"unknown figure {name!r}; choose from {sorted(DRIVERS)} or 'all'")
            return 2
        driver()
        print()
        clear_datasets()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
