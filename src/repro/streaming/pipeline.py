"""Fully streaming ``Q(Qt(T))`` — composition over the two-pass SAX
algorithm (the paper's future-work item).

The pipeline chains three bounded-memory stages:

1. pass 1 of ``twoPassSAX`` computes the transform's ``Ld`` list;
2. pass 2 is *re-run as a factory*: it deterministically re-produces
   the transformed document's event stream on demand (the transformed
   document itself never exists in memory or on disk);
3. :func:`~repro.streaming.select.stream_select` runs the user path on
   that stream (its own two passes re-invoke stage 2), and the user
   query's ``where``/``return`` clauses are evaluated per matched
   subtree — each small, so peak memory stays bounded by document
   depth plus the largest single match.

The source is consumed three times in total (once for the transform's
``Ld``, twice for the selector's passes); each consumption is a fresh
streaming scan.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from repro.automata.filtering import build_filtering_nfa
from repro.automata.selecting import build_selecting_nfa
from repro.transform.query import TransformQuery
from repro.transform.sax_twopass import pass1_collect_ld, pass2_transform
from repro.xmltree.node import Element
from repro.xmltree.sax import SAXEvent, iter_sax_file
from repro.xquery.ast import BoolAnd, EmptySeq, UserQuery
from repro.xquery.evaluator import Environment, eval_bool, eval_expr

EventSource = Callable[[], Iterable[SAXEvent]]


def stream_compose(
    source: EventSource,
    user_query: UserQuery,
    transform_query: TransformQuery,
) -> Iterator:
    """Stream the answer of ``Q(Qt(T))`` item by item."""
    from repro.streaming.select import stream_select

    transform_selecting = build_selecting_nfa(transform_query.path)
    transform_filtering = build_filtering_nfa(transform_query.path)
    transform_ld = pass1_collect_ld(source(), transform_filtering)

    def transformed_events() -> Iterable[SAXEvent]:
        return pass2_transform(
            source(), transform_selecting, transform_query, transform_ld
        )

    for match in stream_select(transformed_events, user_query.path):
        yield from _finish(match, user_query)


def _finish(match: Element, user_query: UserQuery) -> Iterator:
    """Apply the where clause and return template to one bound node."""
    env = Environment({user_query.var: [match]})
    conditions = user_query.conditions
    if conditions:
        merged = conditions[0]
        for extra in conditions[1:]:
            merged = BoolAnd(merged, extra)
        if not eval_bool(merged, env, match):
            return
    yield from eval_expr(user_query.template, env, match)


def stream_compose_file(
    path_on_disk: str,
    user_query: UserQuery,
    transform_query: TransformQuery,
) -> Iterator:
    """``Q(Qt(file))``, streaming, without materializing either tree."""
    def source() -> Iterable[SAXEvent]:
        return iter_sax_file(path_on_disk)

    return stream_compose(source, user_query, transform_query)
