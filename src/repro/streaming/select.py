"""Streaming evaluation of ``X`` path expressions over SAX events.

``stream_select(source, p)`` yields the subtrees of the nodes in
``r[[p]]``, in document order, reading the document twice (the
Section-6 two-pass discipline: pass 1 records qualifier truths in the
cursor-indexed ``Ld`` list, pass 2 runs the selecting NFA and already
knows, at each ``startElement``, whether the node is selected).

Memory is bounded by document depth plus the size of the *currently
open* matches: only subtrees that are being captured are materialized.
A selected node nested inside another selected node yields its own
tree; emission is deferred just enough to preserve document order.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from repro.automata.filtering import FilteringNFA, build_filtering_nfa
from repro.automata.selecting import SelectingNFA, build_selecting_nfa
from repro.transform.sax_twopass import (
    _advance_tracked,
    _close_epsilon,
    pass1_collect_ld,
)
from repro.xmltree.node import Element, Text
from repro.xmltree.sax import EndElement, SAXEvent, StartElement, TextEvent, iter_sax_file
from repro.xpath.ast import Path

EventSource = Callable[[], Iterable[SAXEvent]]


class _Capture:
    """One in-flight match being materialized as a tree."""

    __slots__ = ("root", "stack", "done")

    def __init__(self, label: str, attrs: dict):
        self.root = Element(label, dict(attrs), [])
        self.stack = [self.root]
        self.done = False

    def start(self, label: str, attrs: dict) -> None:
        node = Element(label, dict(attrs), [])
        self.stack[-1].children.append(node)
        self.stack.append(node)

    def text(self, value: str) -> None:
        self.stack[-1].children.append(Text(value))

    def end(self) -> None:
        self.stack.pop()
        if not self.stack:
            self.done = True


def stream_select(
    source: EventSource,
    path: Path,
    selecting: Optional[SelectingNFA] = None,
    filtering: Optional[FilteringNFA] = None,
) -> Iterator[Element]:
    """Yield ``r[[p]]`` subtrees from a two-pass streaming run."""
    if selecting is None:
        selecting = build_selecting_nfa(path)
    if filtering is None:
        filtering = build_filtering_nfa(path)
    ld = pass1_collect_ld(source(), filtering)

    cursor = 0
    stack: list[dict] = []          # tracked alive_by_state per open element
    captures: list[_Capture] = []   # in start order (document order)
    for event in source():
        if isinstance(event, StartElement):
            if not stack:
                initial = {sid: True for sid in selecting.initial_states()}
                for sid in sorted(initial):
                    if selecting.states[sid].has_qualifier:
                        initial[sid] = bool(ld[cursor])
                        cursor += 1
                stack.append(initial)
                # The root itself is never selected in this fragment.
                continue
            tracked, to_check = _advance_tracked(selecting, stack[-1], event.name)
            for sid in to_check:
                value = ld[cursor]
                cursor += 1
                if not value:
                    tracked[sid] = False
            _close_epsilon(selecting, tracked)
            stack.append(tracked)
            for capture in captures:
                if not capture.done:
                    capture.start(event.name, event.attrs)
            if tracked.get(selecting.final_id, False):
                captures.append(_Capture(event.name, event.attrs))
        elif isinstance(event, EndElement):
            if len(stack) > 1:  # the root entry has no capture scope
                for capture in captures:
                    if not capture.done:
                        capture.end()
            stack.pop()
            # Emit completed matches from the front to keep document order.
            while captures and captures[0].done:
                yield captures.pop(0).root
        elif isinstance(event, TextEvent):
            for capture in captures:
                if not capture.done:
                    capture.text(event.value)
    # All captures close with their end tags; nothing can remain open.


def stream_select_file(path_on_disk: str, path: Path) -> Iterator[Element]:
    """Streaming selection straight from a file."""
    def source() -> Iterable[SAXEvent]:
        return iter_sax_file(path_on_disk)

    return stream_select(source, path)
