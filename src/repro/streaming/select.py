"""Streaming evaluation of ``X`` path expressions over SAX events.

``stream_select(source, p)`` yields the subtrees of the nodes in
``r[[p]]``, in document order, reading the document twice (the
Section-6 two-pass discipline: pass 1 records qualifier truths in the
cursor-indexed ``Ld`` list, pass 2 runs the selecting NFA and already
knows, at each ``startElement``, whether the node is selected).

Because the discipline *requires* two reads, the event source must be
replayable: ``source()`` is called once per pass and must return a
fresh iterator each time.  A one-shot source (e.g. ``lambda: events``
around an existing generator) would silently feed pass 2 an exhausted
stream; :func:`stream_select` detects that and raises a ``ValueError``
naming the requirement instead.

Memory is bounded by document depth plus the size of the *currently
open* matches: only subtrees that are being captured are materialized.
A selected node nested inside another selected node yields its own
tree; emission is deferred just enough to preserve document order.

The automaton state per open element is an interned DFA set id plus an
alive bitmask (see :meth:`repro.automata.dfa.LazyDFA.tracked_move`) —
the same compiled tracked moves the SAX pass 2 of
:mod:`repro.transform.sax_twopass` runs on.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from repro.automata.filtering import FilteringNFA, build_filtering_nfa
from repro.automata.selecting import SelectingNFA, build_selecting_nfa
from repro.transform.sax_twopass import pass1_collect_ld
from repro.xmltree.node import Element, Text
from repro.xmltree.sax import (
    EndElement,
    SAXEvent,
    StartElement,
    TextEvent,
    TwoPassSource,
    iter_sax_file,
)
from repro.xpath.ast import Path

EventSource = Callable[[], Iterable[SAXEvent]]


class _Capture:
    """One in-flight match being materialized as a tree."""

    __slots__ = ("root", "stack", "done")

    def __init__(self, label: str, attrs: dict):
        self.root = Element(label, dict(attrs), [])
        self.stack = [self.root]
        self.done = False

    def start(self, label: str, attrs: dict) -> None:
        node = Element(label, dict(attrs), [])
        self.stack[-1].children.append(node)
        self.stack.append(node)

    def text(self, value: str) -> None:
        self.stack[-1].children.append(Text(value))

    def end(self) -> None:
        self.stack.pop()
        if not self.stack:
            self.done = True


def stream_select(
    source,
    path: Path,
    selecting: Optional[SelectingNFA] = None,
    filtering: Optional[FilteringNFA] = None,
) -> Iterator[Element]:
    """Yield ``r[[p]]`` subtrees from a two-pass streaming run.

    Raises ``ValueError`` if *source* is not replayable (see the module
    docstring): the Section-6 discipline reads the document twice.

    A :class:`~repro.xmltree.arena.FrozenDocument` may be passed
    directly as *source*: its columns are **replayable by
    construction** (every :func:`~repro.xmltree.arena.arena_to_events`
    call is a fresh stream over immutable arrays), so an arena is the
    natural replay source for the two-pass discipline — no one-shot
    iterator hazard, no second file read.
    """
    from repro.xmltree.arena import FrozenDocument, arena_to_events

    if isinstance(source, FrozenDocument):
        arena = source
        source = lambda: arena_to_events(arena)  # noqa: E731
    if selecting is None:
        selecting = build_selecting_nfa(path)
    if filtering is None:
        filtering = build_filtering_nfa(path)
    two_pass = TwoPassSource(source, "stream_select")
    ld = pass1_collect_ld(two_pass.pass1(), filtering)
    return _select_pass2(two_pass.pass2(), selecting, ld)


def _select_pass2(
    events: Iterable[SAXEvent],
    selecting: SelectingNFA,
    ld: list,
) -> Iterator[Element]:
    dfa = selecting.dfa()
    advance = dfa.advance_tracked
    cursor = 0
    stack: list = []                # (set_id, alive) per open element
    captures: list[_Capture] = []   # in start order (document order)
    for event in events:
        if isinstance(event, StartElement):
            if not stack:
                set_id, alive, cursor = dfa.root_tracked(ld, cursor)
                stack.append((set_id, alive))
                # The root itself is never selected in this fragment.
                continue
            set_id, alive, cursor, selected = advance(
                stack[-1][0], stack[-1][1], event.name, ld, cursor
            )
            stack.append((set_id, alive))
            for capture in captures:
                if not capture.done:
                    capture.start(event.name, event.attrs)
            if selected:
                captures.append(_Capture(event.name, event.attrs))
        elif isinstance(event, EndElement):
            if len(stack) > 1:  # the root entry has no capture scope
                for capture in captures:
                    if not capture.done:
                        capture.end()
            stack.pop()
            # Emit completed matches from the front to keep document order.
            while captures and captures[0].done:
                yield captures.pop(0).root
        elif isinstance(event, TextEvent):
            for capture in captures:
                if not capture.done:
                    capture.text(event.value)
    # All captures close with their end tags; nothing can remain open.
    # (TwoPassSource raises before we get here if pass 2 was starved.)


def stream_select_file(path_on_disk: str, path: Path) -> Iterator[Element]:
    """Streaming selection straight from a file."""
    def source() -> Iterable[SAXEvent]:
        return iter_sax_file(path_on_disk)

    return stream_select(source, path)
