"""Streaming query processing — the paper's future-work item 3.

Section 9 lists "extend our composition techniques to work with the SAX
based two-pass algorithm" as future work.  This package implements it
for the Section-4 user-query class:

* :mod:`repro.streaming.select` — a bounded-memory streaming evaluator
  for ``X`` path expressions: two SAX passes (the Section-6 cursor
  trick answers qualifiers at ``startElement`` time), yielding matched
  subtrees in document order while buffering only open matches.
* :mod:`repro.streaming.pipeline` — ``Q(Qt(T))`` end-to-end on a file
  that never fits in memory: the transform's pass-2 event stream feeds
  the selector, and the user query's where/return clauses run on each
  (small) matched subtree.
"""

from repro.streaming.select import stream_select, stream_select_file
from repro.streaming.pipeline import stream_compose, stream_compose_file

__all__ = [
    "stream_compose",
    "stream_compose_file",
    "stream_select",
    "stream_select_file",
]
