"""The service's line protocol: one JSON object per ``\\n``-terminated
line, in both directions.

Request frames::

    {"id": 1, "op": "query", "target": "xmark",
     "text": "for $x in people/person return $x",
     "staged": false, "deadline_ms": 250}

``id`` is echoed back verbatim (any JSON scalar); ``deadline_ms`` is
optional.  Response frames::

    {"id": 1, "ok": true, "result": ["<person>…</person>"]}
    {"id": 1, "ok": false,
     "error": {"code": "overloaded", "message": "…"}}

Ops and their arguments (all strings unless noted):

===========  ==========================================================
``load``     ``name`` + (``path`` | ``xml``), optional ``replace``
``defview``  ``name``, ``base``, ``transform``
``query``    ``target``, ``text``, optional ``staged`` (bool),
             ``deadline_ms`` (number), ``trace_id``/``parent_span``
             (strings — propagated client trace context; the service
             span joins the caller's trace instead of minting its own)
``transform````name``, ``text`` — hypothetical, returns serialized XML
``stage``    ``name``, ``text``
``commit``   ``name``, optional ``text`` (stage-then-commit)
``rollback`` ``name``, optional ``count`` (int)
``stats``    —
``metrics``  — the registry snapshot: flat ``layer.component.metric``
             names → values (histograms as summary dicts)
``traces``   optional ``drain`` (bool) — buffered trace records,
             oldest first; ``drain`` empties the ring.  Optional
             ``stitched`` (bool): per-trace summaries (root, span
             count, orphans, well-formedness) instead of raw records
``slowlog``  optional ``drain`` (bool) — the slow-query ring: entries
             over the latency threshold with their stitched trace and
             profile, plus the log's counters
``metrics_text``  — the registry snapshot rendered in Prometheus text
             exposition format (one string)
``ping``     — liveness probe, returns ``"pong"``
===========  ==========================================================

Errors map to codes: the service's typed errors carry their own
(``overloaded``/``deadline``/``bad-request``/``closed``), store errors
travel as ``store``, anything else as ``error``; the client rebuilds
the matching exception class from the code
(:func:`repro.service.errors.error_for`).
"""

from __future__ import annotations

import json
from typing import Optional

from repro.faults import InjectedFault
from repro.service.errors import BadRequestError, ServiceError
from repro.store.errors import StoreError

__all__ = [
    "OPS",
    "decode_line",
    "encode_frame",
    "error_frame",
    "handle_request",
    "result_frame",
]

#: The ops a server accepts (the ``shutdown`` of a server is process
#: lifecycle — SIGINT/SIGTERM — not a wire op).
OPS = (
    "load", "defview", "query", "transform", "stage", "commit",
    "rollback", "stats", "metrics", "metrics_text", "traces",
    "slowlog", "ping",
)


def encode_frame(frame: dict) -> bytes:
    """One frame as wire bytes (compact JSON + newline)."""
    return (json.dumps(frame, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> dict:
    """Parse one wire line into a frame dict, or raise
    :class:`BadRequestError`."""
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequestError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(frame, dict):
        raise BadRequestError("frame must be a JSON object")
    return frame


def result_frame(request_id, result) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def error_frame(request_id, exc: BaseException) -> dict:
    if isinstance(exc, ServiceError):
        code = exc.code
    elif isinstance(exc, StoreError):
        code = "store"
    elif isinstance(exc, InjectedFault):
        code = "fault"
    else:
        code = "error"
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": str(exc)},
    }


def _require(frame: dict, key: str) -> str:
    value = frame.get(key)
    if not isinstance(value, str) or not value:
        raise BadRequestError(f"op {frame.get('op')!r} needs a string {key!r}")
    return value


def _optional_str(frame: dict, key: str) -> Optional[str]:
    value = frame.get(key)
    if value is None:
        return None
    if not isinstance(value, str) or not value:
        raise BadRequestError(f"{key!r} must be a non-empty string")
    return value


def _deadline_of(frame: dict) -> Optional[float]:
    deadline_ms = frame.get("deadline_ms")
    if deadline_ms is None:
        return None
    # bool subclasses int, so `true` would otherwise read as a 1 ms
    # deadline instead of a malformed frame.
    if (
        isinstance(deadline_ms, bool)
        or not isinstance(deadline_ms, (int, float))
        or deadline_ms <= 0
    ):
        raise BadRequestError("deadline_ms must be a positive number")
    return deadline_ms / 1000.0


def handle_request(service, frame: dict):
    """Dispatch one decoded request frame against a
    :class:`~repro.service.service.QueryService`; returns the result
    payload (exceptions propagate for :func:`error_frame`)."""
    op = frame.get("op")
    if op == "query":
        return service.query(
            _require(frame, "target"),
            _require(frame, "text"),
            deadline=_deadline_of(frame),
            staged=bool(frame.get("staged", False)),
            trace_id=_optional_str(frame, "trace_id"),
            parent_span=_optional_str(frame, "parent_span"),
        )
    if op == "ping":
        return "pong"
    if op == "stats":
        return service.stats()
    if op == "metrics":
        return service.registry.snapshot()
    if op == "metrics_text":
        return service.metrics_text()
    if op == "traces":
        return service.traces(
            drain=bool(frame.get("drain", False)),
            stitched=bool(frame.get("stitched", False)),
        )
    if op == "slowlog":
        return service.slowlog(drain=bool(frame.get("drain", False)))
    if op == "load":
        name = _require(frame, "name")
        replace = bool(frame.get("replace", False))
        if frame.get("xml") is not None:
            return service.put(name, _require(frame, "xml"), replace=replace)
        return service.load(name, _require(frame, "path"), replace=replace)
    if op == "defview":
        return service.define_view(
            _require(frame, "name"), _require(frame, "base"),
            _require(frame, "transform"),
        )
    if op == "transform":
        return service.transform(_require(frame, "name"), _require(frame, "text"))
    if op == "stage":
        return service.stage(_require(frame, "name"), _require(frame, "text"))
    if op == "commit":
        text = frame.get("text")
        if text is not None and not isinstance(text, str):
            raise BadRequestError("commit text must be a string")
        return service.commit(_require(frame, "name"), text)
    if op == "rollback":
        count = frame.get("count")
        if count is not None and (
            isinstance(count, bool) or not isinstance(count, int)
        ):
            raise BadRequestError("rollback count must be an integer")
        return service.rollback(_require(frame, "name"), count)
    raise BadRequestError(
        f"unknown op {op!r}; expected one of {', '.join(OPS)}"
    )
