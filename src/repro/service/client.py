"""``repro.service.Client`` — the line-protocol client.

Synchronous request/response over one TCP connection::

    from repro.service import Client

    with Client("127.0.0.1", 7007) as db:
        db.load("xmark", path="xmark.xml")
        rows = db.query("xmark", "for $x in people/person return $x")
        db.commit("xmark", 'transform copy $a := doc("xmark") modify '
                           "do delete $a//privacy return $a")

Server-side errors re-raise as their typed exception classes
(:class:`~repro.service.errors.OverloadedError`,
:class:`~repro.service.errors.DeadlineError`,
:class:`~repro.store.errors.StoreError`, …) so code written against an
in-process :class:`~repro.service.service.QueryService` ports across
the wire unchanged.  One client is one connection and is **not**
thread-safe — concurrency comes from many clients (that is what fills
the server's batch windows), not from sharing one.

Self-healing: transport failures split into two typed classes with
different retry contracts.  :class:`~repro.service.errors.
TransportError` means the request was never sent (the connect failed);
:class:`~repro.service.errors.ResponseLostError` means it was sent —
or may have been — and the response was lost (timeout, EOF, socket
error mid-exchange).  **Idempotent reads** (``ping``/``query``/
``stats``/``metrics``/``traces``) are retried automatically under the
client's :class:`RetryPolicy` — exponential backoff with jitter,
reconnecting a fresh socket each attempt — and raise
:class:`~repro.service.errors.RetryExhaustedError` (carrying the last
failure) when the budget runs out.  **Writes are never auto-retried**:
a lost commit may have been applied, and only the caller knows whether
re-issuing it is correct, so the typed error surfaces immediately.
An explicit :meth:`Client.close` is permanent; only transport-induced
teardown leaves the client reconnectable.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Optional

from repro.obs import Tracer, stitch
from repro.service.errors import (
    ResponseLostError,
    RetryExhaustedError,
    ServiceClosedError,
    TransportError,
    error_for,
)
from repro.service.protocol import decode_line, encode_frame

__all__ = ["Client", "IDEMPOTENT_OPS", "RetryPolicy"]

#: Ops whose re-execution is observably equivalent to one execution —
#: the only ops the client will retry on its own.  (``slowlog`` with
#: ``drain`` is destructive server-side, but a retried drain that was
#: half-delivered loses entries either way — re-reading is safe.)
IDEMPOTENT_OPS = frozenset(
    {"ping", "query", "stats", "metrics", "metrics_text", "traces", "slowlog"}
)


class RetryPolicy:
    """Exponential backoff with jitter for idempotent-read retries.

    Attempt *k* (0-based retry index) sleeps
    ``min(max_delay, base_delay * 2**k)`` scaled by a random factor in
    ``[1, 1 + jitter]`` — the jitter decorrelates clients that all saw
    the same server hiccup, so they do not reconnect in lockstep.
    ``attempts=1`` disables retries entirely.
    """

    __slots__ = ("attempts", "base_delay", "max_delay", "jitter")

    def __init__(
        self,
        attempts: int = 3,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        jitter: float = 0.5,
    ):
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.jitter = jitter

    def delay(self, retry_index: int, rng: "random.Random") -> float:
        base = min(self.max_delay, self.base_delay * (2 ** retry_index))
        return base * (1.0 + self.jitter * rng.random())


class Client:
    """One connection to a running ``repro serve``."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7007,
        timeout: Optional[float] = 30.0,
        retry: Optional[RetryPolicy] = None,
        retry_seed: Optional[int] = None,
        trace_sample: int = 16,
        trace_ring: int = 64,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self._rng = random.Random(retry_seed)
        #: The client half of cross-process tracing: every *sampled*
        #: query opens a **root** trace here and ships its ids in the
        #: request frame, so the server's span (and its workers') join
        #: the client's trace instead of minting their own.  The same
        #: deterministic 1-in-N sampling as the server; ``0`` disables.
        self.tracer = Tracer(
            ring=trace_ring,
            sample_every=trace_sample,
            enabled=trace_sample > 0,
        )
        #: Client-local counters (``service.client.*`` when a loadgen
        #: or harness surfaces them): retries attempted, sockets
        #: reconnected, retry budgets exhausted.
        self.retry_stats = {"retries": 0, "reconnects": 0, "exhausted": 0}
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0
        self._closed = False
        self._connect()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _connect(self):
        """Establish the socket; :class:`TransportError` on failure
        (the connect phase — nothing was ever sent)."""
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._file = self._sock.makefile("rwb")
        except OSError as exc:
            self._sock = None
            self._file = None
            raise TransportError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from None
        return self._file

    def _teardown(self) -> None:
        """Drop the socket after a transport failure.  Unlike
        :meth:`close`, the client stays usable: the next call
        reconnects."""
        file, self._file = self._file, None
        sock, self._sock = self._sock, None
        for closeable in (file, sock):
            if closeable is None:
                continue
            try:
                closeable.close()
            except OSError:
                pass

    def _call_once(self, op: str, args: dict):
        """One raw request/response round trip on the live (or a
        fresh) connection."""
        file = self._file
        if file is None:
            file = self._connect()
            self.retry_stats["reconnects"] += 1
        self._next_id += 1
        request_id = self._next_id
        frame = {"id": request_id, "op": op}
        frame.update({k: v for k, v in args.items() if v is not None})
        try:
            file.write(encode_frame(frame))
            file.flush()
            line = file.readline()
        except (ConnectionError, OSError) as exc:
            # Includes socket.timeout: the request was (or may have
            # been) sent and a reply may still be in flight, so the
            # stream is desynchronized — tear the socket down rather
            # than let the next call read this request's late response.
            self._teardown()
            raise ResponseLostError(
                f"connection to {self.host}:{self.port} failed "
                f"mid-request: {exc}"
            ) from None
        if not line:
            self._teardown()
            raise ResponseLostError(
                f"server at {self.host}:{self.port} closed the connection"
            )
        response = decode_line(line)
        if response.get("id") != request_id:  # pragma: no cover - defensive
            self._teardown()
            raise ResponseLostError(
                f"out-of-order response: sent id {request_id}, "
                f"got {response.get('id')!r}"
            )
        if response.get("ok"):
            return response.get("result")
        error = response.get("error") or {}
        raise error_for(error.get("code", "error"), error.get("message", "unknown"))

    def call(self, op: str, **args):
        """One request/response exchange; returns the result payload or
        raises the typed error the server answered with.

        Idempotent reads retry transport failures under the client's
        :class:`RetryPolicy`; writes surface the first typed failure.
        """
        if self._closed:
            raise ServiceClosedError("client is closed")
        if op not in IDEMPOTENT_OPS:
            return self._call_once(op, args)
        policy = self.retry
        last: Optional[Exception] = None
        for attempt in range(policy.attempts):
            if attempt:
                self.retry_stats["retries"] += 1
                time.sleep(policy.delay(attempt - 1, self._rng))
            try:
                return self._call_once(op, args)
            except (TransportError, ResponseLostError) as exc:
                last = exc
        self.retry_stats["exhausted"] += 1
        raise RetryExhaustedError(op, policy.attempts, last)

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------

    def ping(self) -> str:
        return self.call("ping")

    def query(
        self,
        target: str,
        text: str,
        *,
        staged: bool = False,
        deadline_ms: Optional[float] = None,
    ) -> list:
        """One read, with the client half of the end-to-end trace.

        A sampled query opens the **root** span of the whole request:
        its ``trace_id``/``parent_span`` travel in the frame, the
        server's ``service.query`` record (with worker spans already
        spliced in) points back at it, and any transport retries or
        reconnects the exchange needed are stamped onto the root —
        :meth:`stitched` reassembles the full tree.
        """
        trace = self.tracer.trace("client.query", target=target, query=text)
        retries = self.retry_stats["retries"]
        reconnects = self.retry_stats["reconnects"]
        try:
            result = self.call(
                "query",
                target=target,
                text=text,
                staged=staged or None,
                deadline_ms=deadline_ms,
                trace_id=trace.trace_id,
                parent_span=trace.span_id,
            )
        except Exception as exc:
            self._stamp_transport(trace, retries, reconnects)
            trace.finish(outcome="error", error=str(exc))
            raise
        self._stamp_transport(trace, retries, reconnects)
        trace.finish(outcome="ok")
        return result

    def _stamp_transport(self, trace, retries_before: int, reconnects_before: int) -> None:
        """Record how many retries/reconnects one exchange consumed
        (only when nonzero, so clean records stay small)."""
        retried = self.retry_stats["retries"] - retries_before
        reconnected = self.retry_stats["reconnects"] - reconnects_before
        if retried:
            trace.note(retries=retried)
        if reconnected:
            trace.note(reconnects=reconnected)

    def load(
        self,
        name: str,
        *,
        path: Optional[str] = None,
        xml: Optional[str] = None,
        replace: bool = False,
    ) -> dict:
        return self.call(
            "load", name=name, path=path, xml=xml, replace=replace or None
        )

    def defview(self, name: str, base: str, transform: str) -> dict:
        return self.call("defview", name=name, base=base, transform=transform)

    def transform(self, name: str, text: str) -> str:
        return self.call("transform", name=name, text=text)

    def stage(self, name: str, text: str) -> dict:
        return self.call("stage", name=name, text=text)

    def commit(self, name: str, text: Optional[str] = None) -> dict:
        return self.call("commit", name=name, text=text)

    def rollback(self, name: str, count: Optional[int] = None) -> dict:
        return self.call("rollback", name=name, count=count)

    def stats(self) -> dict:
        return self.call("stats")

    def metrics(self) -> dict:
        """The server's metrics-registry snapshot: flat
        ``layer.component.metric`` names → values."""
        return self.call("metrics")

    def traces(self, *, drain: bool = False, stitched: bool = False) -> list:
        """The server's buffered trace records (destructively when
        *drain*; per-trace summaries when *stitched*)."""
        return self.call(
            "traces", drain=drain or None, stitched=stitched or None
        )

    def local_traces(self, *, drain: bool = False) -> list:
        """This client's own buffered root records."""
        return self.tracer.drain() if drain else self.tracer.records()

    def stitched(self, *, drain: bool = False) -> list:
        """End-to-end stitched traces: the server's records and this
        client's roots merged into per-trace trees — each well-formed
        entry is one request seen from client, service, and (process
        mode) worker."""
        return stitch(
            self.traces(drain=drain) + self.local_traces(drain=drain)
        )

    def slowlog(self, *, drain: bool = False) -> dict:
        """The server's slow-query ring (entries + counters)."""
        return self.call("slowlog", drain=drain or None)

    def metrics_text(self) -> str:
        """The server's registry snapshot in Prometheus text format."""
        return self.call("metrics_text")

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Permanently close the client (no reconnects after this)."""
        self._closed = True
        self._teardown()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
