"""``repro.service.Client`` — the line-protocol client.

Synchronous request/response over one TCP connection::

    from repro.service import Client

    with Client("127.0.0.1", 7007) as db:
        db.load("xmark", path="xmark.xml")
        rows = db.query("xmark", "for $x in people/person return $x")
        db.commit("xmark", 'transform copy $a := doc("xmark") modify '
                           "do delete $a//privacy return $a")

Server-side errors re-raise as their typed exception classes
(:class:`~repro.service.errors.OverloadedError`,
:class:`~repro.service.errors.DeadlineError`,
:class:`~repro.store.errors.StoreError`, …) so code written against an
in-process :class:`~repro.service.service.QueryService` ports across
the wire unchanged.  One client is one connection and is **not**
thread-safe — concurrency comes from many clients (that is what fills
the server's batch windows), not from sharing one.
"""

from __future__ import annotations

import socket
from typing import Optional

from repro.service.errors import ServiceClosedError, ServiceError, error_for
from repro.service.protocol import decode_line, encode_frame

__all__ = ["Client"]


class Client:
    """One connection to a running ``repro serve``."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7007,
        timeout: Optional[float] = 30.0,
    ):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def call(self, op: str, **args):
        """One raw request/response round trip; returns the result
        payload or raises the typed error the server answered with."""
        if self._file is None:
            raise ServiceClosedError("client is closed")
        self._next_id += 1
        request_id = self._next_id
        frame = {"id": request_id, "op": op}
        frame.update({k: v for k, v in args.items() if v is not None})
        try:
            self._file.write(encode_frame(frame))
            self._file.flush()
            line = self._file.readline()
        except (ConnectionError, OSError) as exc:
            # Includes socket.timeout: a reply may still be in flight,
            # so the stream is desynchronized — close rather than let
            # the next call read this request's late response.
            self.close()
            raise ServiceClosedError(f"connection to {self.host}:{self.port} "
                                     f"failed: {exc}") from None
        if not line:
            self.close()
            raise ServiceClosedError(
                f"server at {self.host}:{self.port} closed the connection"
            )
        response = decode_line(line)
        if response.get("id") != request_id:  # pragma: no cover - defensive
            self.close()
            raise ServiceError(
                f"out-of-order response: sent id {request_id}, "
                f"got {response.get('id')!r}"
            )
        if response.get("ok"):
            return response.get("result")
        error = response.get("error") or {}
        raise error_for(error.get("code", "error"), error.get("message", "unknown"))

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------

    def ping(self) -> str:
        return self.call("ping")

    def query(
        self,
        target: str,
        text: str,
        *,
        staged: bool = False,
        deadline_ms: Optional[float] = None,
    ) -> list:
        return self.call(
            "query",
            target=target,
            text=text,
            staged=staged or None,
            deadline_ms=deadline_ms,
        )

    def load(
        self,
        name: str,
        *,
        path: Optional[str] = None,
        xml: Optional[str] = None,
        replace: bool = False,
    ) -> dict:
        return self.call(
            "load", name=name, path=path, xml=xml, replace=replace or None
        )

    def defview(self, name: str, base: str, transform: str) -> dict:
        return self.call("defview", name=name, base=base, transform=transform)

    def transform(self, name: str, text: str) -> str:
        return self.call("transform", name=name, text=text)

    def stage(self, name: str, text: str) -> dict:
        return self.call("stage", name=name, text=text)

    def commit(self, name: str, text: Optional[str] = None) -> dict:
        return self.call("commit", name=name, text=text)

    def rollback(self, name: str, count: Optional[int] = None) -> dict:
        return self.call("rollback", name=name, count=count)

    def stats(self) -> dict:
        return self.call("stats")

    def metrics(self) -> dict:
        """The server's metrics-registry snapshot: flat
        ``layer.component.metric`` names → values."""
        return self.call("metrics")

    def traces(self, *, drain: bool = False) -> list:
        """The server's buffered trace records (destructively when
        *drain*)."""
        return self.call("traces", drain=drain or None)

    # ------------------------------------------------------------------

    def close(self) -> None:
        file, self._file = self._file, None
        if file is None:
            return
        try:
            file.close()
        except OSError:
            pass
        finally:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - already torn down
                pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
