"""The TCP line-protocol server: many client connections, one
:class:`~repro.service.service.QueryService`.

One daemon thread per connection (``socketserver.ThreadingTCPServer``)
reads newline-delimited JSON frames and answers in order on the same
connection.  Because every connection thread blocks in
``service.query`` — i.e. on the batching scheduler — concurrent
clients are exactly what fills the dispatcher's batch windows: the
server adds no queueing of its own on top of the service's admission
control.

Graceful shutdown (:meth:`ServiceServer.stop`): stop accepting, wake
the accept loop, let in-flight requests finish (the service drains its
queue on ``close``), then release the port.
"""

from __future__ import annotations

import socketserver
import threading
from typing import Optional

from repro.faults import InjectedFault, fault_point
from repro.service.protocol import (
    decode_line,
    encode_frame,
    error_frame,
    handle_request,
    result_frame,
)
from repro.service.service import QueryService

__all__ = ["ServiceServer"]


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read frames until EOF, answer each in order."""

    def handle(self) -> None:
        service = self.server.service  # type: ignore[attr-defined]
        while True:
            try:
                line = self.rfile.readline()
            except (ConnectionError, OSError):
                return
            if not line:
                return  # client closed the connection
            if not line.strip():
                continue  # blank keep-alive line
            request_id = None
            try:
                frame = decode_line(line)
                request_id = frame.get("id")
                response = result_frame(request_id, handle_request(service, frame))
            except Exception as exc:  # noqa: BLE001 - every error becomes a frame
                response = error_frame(request_id, exc)
            try:
                # Chaos hook: the request has been *executed* (a commit
                # is already durable in the WAL) but not yet answered —
                # crash mode here is the acked-vs-durable gap the
                # client's retry taxonomy exists for.
                fault_point("wire.response.pre_send")
            except InjectedFault as exc:
                response = error_frame(request_id, exc)
            try:
                self.wfile.write(encode_frame(response))
                self.wfile.flush()
            except (ConnectionError, OSError, ValueError):
                return  # client went away mid-response


class _TCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True


class ServiceServer:
    """Bind, serve, and shut down a :class:`QueryService` over TCP.

    ``port=0`` binds an ephemeral port — read the real one from
    :attr:`address` (what the tests and the CLI's ``--port-file`` do).
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self._tcp = _TCPServer((host, port), _Handler)
        self._tcp.service = service  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple:
        """The bound ``(host, port)``."""
        return self._tcp.server_address[:2]

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop`."""
        self._tcp.serve_forever(poll_interval=0.1)

    def start(self) -> tuple:
        """Serve on a background thread; returns the bound address."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-accept", daemon=True
        )
        self._thread.start()
        return self.address

    def stop(self, close_service: bool = True) -> None:
        """Graceful shutdown: stop accepting, drain, release the port."""
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if close_service:
            self.service.close()

    def __enter__(self) -> "ServiceServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
