"""``repro.service`` — a concurrent query service over the view store.

The store (:mod:`repro.store`) answers one caller at a time under
per-document locks; this subsystem puts a serving layer in front of it
for many concurrent clients:

* **MVCC snapshot reads** — every request pins the target document's
  current frozen arena version and evaluates against that immutable
  snapshot, lock-free; writers stage and commit without ever blocking
  or corrupting readers (single-writer, many-reader).
* **Request batching** — a dispatch window coalesces identical
  (document, version, query) requests into one evaluation and groups
  distinct queries per document so prepared statements and warm DFA
  tables amortize across them.
* **A worker pool** — threads by default; an opt-in ``multiprocessing``
  mode ships arenas to workers as pickled columns for CPU-parallel
  scans of large documents.
* **A line-protocol TCP server and client** — ``repro serve`` /
  :class:`Client`, JSON frames, graceful shutdown, per-request
  deadlines, and admission control that sheds load with typed errors.

In-process::

    from repro import QueryService

    service = QueryService()
    service.put("db", "<db><a><v>1</v></a></db>")
    rows = service.query("db", "for $x in a/v return $x")
    service.close()

Over the wire::

    # terminal 1
    $ repro serve --state .repro-store --port 7007

    # terminal 2 (python)
    from repro.service import Client
    with Client(port=7007) as db:
        rows = db.query("db", "for $x in a/v return $x")
"""

from repro.service.client import Client, RetryPolicy
from repro.service.errors import (
    BadRequestError,
    DeadlineError,
    OverloadedError,
    ResponseLostError,
    RetryExhaustedError,
    ServiceClosedError,
    ServiceError,
    TransportError,
)
from repro.service.server import ServiceServer
from repro.service.service import QueryService, ServiceConfig

__all__ = [
    "BadRequestError",
    "Client",
    "DeadlineError",
    "OverloadedError",
    "QueryService",
    "ResponseLostError",
    "RetryExhaustedError",
    "RetryPolicy",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "TransportError",
]
