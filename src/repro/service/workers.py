"""Worker pools for the query service's snapshot reads.

Two executors, one contract — evaluate a group of distinct queries
against one pinned arena snapshot and return serialized results:

* **Threads** (the default): arena reads release no locks and allocate
  little, so a :class:`~concurrent.futures.ThreadPoolExecutor` gives
  cheap concurrency for many small-to-medium requests.  The GIL caps
  CPU parallelism, but the batching scheduler's coalescing — not raw
  parallel scanning — is where the thread mode's throughput comes
  from.
* **Processes** (opt-in, ``mode="process"``): for CPU-parallel scans
  of large documents.  A :class:`FrozenDocument` cannot cross the
  process boundary directly (its symbol table carries a lock), so the
  parent ships the arena as a pickled **column payload**
  (:meth:`~repro.xmltree.arena.FrozenDocument.columns`) and each
  worker rebuilds — and caches — the arena on its side
  (:func:`~repro.xmltree.arena.arena_from_columns`), re-interning
  symbols through its own process-wide table so the automata it
  compiles locally line up.  Shipping the columns is paid at most once
  per arena per worker: the parent first sends a bare reference — the
  snapshot's process-unique arena ``uid``, never the ambiguous
  ``(name, version)`` pair, which a drop-and-reload can reuse — and
  only re-sends with columns when a worker answers that it has not
  seen that arena yet.  Workers are started with the ``spawn`` method:
  the service is inherently multi-threaded by the time batches flow,
  and forking a threaded parent can clone held locks into the child.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor
from typing import Optional

from repro.faults import fault_point
from repro.service.errors import ServiceError

__all__ = ["GroupResult", "ProcessWorkers", "ThreadWorkers"]

#: Per-worker-process arena cache: (name, arena uid) → FrozenDocument.
#: Bounded — a long-lived pool serving many documents must not pin
#: every version it ever rebuilt.
_WORKER_ARENA_CAP = 4
_worker_arenas: "OrderedDict[tuple, object]" = OrderedDict()

#: Sentinel result meaning "ship me the columns and ask again".
NEED_COLUMNS = "need-columns"


class GroupResult(list):
    """The outcomes of one evaluation group — one ``("ok", result)`` /
    ``("error", exception)`` pair per text, in order (it *is* that
    list) — with the cross-process trace extras riding as attributes:

    * ``spans_by_text`` — worker-minted span records per query text
      (empty in thread mode, where spans land on the activated trace
      directly).
    * ``retries`` — pool respawn-and-retry rounds this group survived
      (stamped onto the request traces as ``worker_retries``).
    """

    def __init__(self, outcomes, spans_by_text: Optional[dict] = None, retries: int = 0):
        super().__init__(outcomes)
        self.spans_by_text = spans_by_text if spans_by_text is not None else {}
        self.retries = retries


def _worker_evaluate(
    name: str,
    uid: int,
    columns: Optional[dict],
    texts: list,
    trace_ctxs: Optional[dict] = None,
):
    """Run in a worker process: evaluate *texts* (distinct FLWR query
    texts) over the arena the parent pinned as (name, uid), serialized
    straight from the columns.

    Returns ``(NEED_COLUMNS, None, None)`` when the arena is not cached
    here and *columns* were not shipped; otherwise ``("ok", [list-of-
    serialized-strings per text], {text: [span records]})``.  Compiled
    artifacts come from this process's own default engine, so repeated
    batches pay zero recompilation exactly like the parent would.

    *trace_ctxs* maps a query text to its propagated trace context
    (``{"trace": id, "parent_span": span id}``) for the texts whose
    request was sampled: those evaluations are timed here and returned
    as span records minted with **this worker's** process token, so
    the parent can splice them into the request trace without any risk
    of id collision.
    """
    from repro.automata.arena_run import serialize_arena_items
    from repro.engine import default_engine
    from repro.xmltree.arena import arena_from_columns
    from repro.xquery.arena_eval import ArenaEvaluator

    # Chaos hook: REPRO_FAULTS in the (inherited) environment arms this
    # in every spawned worker — crash mode kills the worker process,
    # exercising the parent's respawn path.
    fault_point("service.worker.evaluate")
    key = (name, uid)
    arena = _worker_arenas.get(key)
    if arena is None:
        if columns is None:
            return NEED_COLUMNS, None, None
        arena = arena_from_columns(columns)
        _worker_arenas[key] = arena
        while len(_worker_arenas) > _WORKER_ARENA_CAP:
            _worker_arenas.popitem(last=False)
    else:
        _worker_arenas.move_to_end(key)
    engine = default_engine()
    evaluator = ArenaEvaluator(arena, engine.cache.selecting_nfa_for)
    results = []
    spans_by_text: dict = {}
    for text in texts:
        ctx = trace_ctxs.get(text) if trace_ctxs else None
        begin = time.perf_counter()
        # Per-text outcomes: one malformed query must not poison the
        # good queries batched alongside it.  Exceptions cross the
        # process boundary as their message (custom __init__ signatures
        # make many of this package's errors unpicklable).
        try:
            refs = evaluator.evaluate_refs(engine.cache.user_query(text))
            results.append(("ok", serialize_arena_items(arena, refs)))
        except ValueError as exc:
            results.append(("error", str(exc)))
        if ctx is not None:
            spans_by_text[text] = [_worker_span(ctx, begin)]
    return "ok", results, spans_by_text


def _worker_span(ctx: dict, begin: float) -> dict:
    """One worker-side evaluation span record, minted with this
    process's token (see :func:`repro.obs.trace.new_span_id`)."""
    import os

    from repro.obs import new_span_id, process_token

    return {
        "name": "worker.evaluate",
        "span_id": new_span_id(),
        "parent_span": ctx.get("parent_span"),
        "proc": process_token(),
        "pid": os.getpid(),
        "start_us": 0,  # remote clock: offsets are not comparable
        "dur_us": int((time.perf_counter() - begin) * 1e6),
        "depth": 1,
    }


class ThreadWorkers:
    """The default executor: a plain thread pool."""

    mode = "thread"

    def __init__(self, workers: int):
        self.pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-service"
        )

    def submit(self, fn, *args):
        return self.pool.submit(fn, *args)

    def evaluate_group(
        self, snapshot, texts: list, evaluate_fn, trace_ctxs: Optional[dict] = None
    ) -> GroupResult:
        """Thread mode evaluates in-process: the caller's own
        *evaluate_fn* (which shares the service's compiled caches)
        runs right here in the worker thread.

        Returns a :class:`GroupResult` — one ``("ok", result)`` /
        ``("error", exception)`` pair per text, in order.  Trace
        context needs no shipping in-process (*trace_ctxs* is accepted
        for signature parity): the service activates the request trace
        around *evaluate_fn*, so spans land on it directly.
        """
        outcomes = []
        for text in texts:
            try:
                outcomes.append(("ok", evaluate_fn(snapshot, text)))
            except Exception as exc:  # noqa: BLE001 - forwarded per waiter
                outcomes.append(("error", exc))
        return GroupResult(outcomes)

    def shutdown(self) -> None:
        self.pool.shutdown(wait=True)


class ProcessWorkers(ThreadWorkers):
    """The opt-in CPU-parallel executor.

    Keeps the thread pool (dispatch, non-batchable requests, view
    reads) and adds a process pool that the arena read groups are
    farmed to.  Snapshots reach workers by the two-step column-payload
    protocol described in the module docstring.

    Self-healing: a crashed worker breaks the whole
    ``ProcessPoolExecutor`` (every pending and future submission raises
    ``BrokenProcessPool``), so :meth:`evaluate_group` replaces a broken
    pool with a fresh one and retries the group — the evaluation is a
    pure read over a pinned snapshot, so re-running it is always safe.
    The restart budget is bounded: a pool that keeps dying (a
    deterministic crasher would otherwise respawn forever) exhausts it
    and surfaces a typed :class:`ServiceError` instead.
    """

    mode = "process"

    # guarded-by[processes, _generation, _restarts_left, restarts]: self._respawn_lock

    def __init__(self, workers: int, restart_budget: int = 3):
        super().__init__(workers)
        self._workers = workers
        self._respawn_lock = threading.Lock()
        self._generation = 0
        self._restarts_left = restart_budget
        #: Pools respawned after a worker crash (probed as
        #: ``service.workers.restarts``).
        self.restarts = 0
        try:
            self.processes = self._spawn_pool()
        except (OSError, ImportError) as exc:  # pragma: no cover - sandboxed hosts
            self.pool.shutdown(wait=False)
            raise ServiceError(f"process worker pool unavailable: {exc}") from exc
        self._columns_lock = threading.Lock()
        self._columns_cache: "OrderedDict[tuple, dict]" = OrderedDict()  # guarded-by: self._columns_lock

    def _spawn_pool(self):
        import multiprocessing

        from concurrent.futures import ProcessPoolExecutor

        # spawn, not fork: by the time batches reach this pool the
        # parent is running dispatcher/handler threads, and forking a
        # threaded process can clone a held lock (symbol table, LRU)
        # into the child, deadlocking the first evaluation.  The cost
        # is a one-time interpreter start per worker.
        context = multiprocessing.get_context("spawn")
        return ProcessPoolExecutor(
            max_workers=self._workers, mp_context=context
        )

    def _respawn(self, generation: int) -> None:
        """Replace the broken pool (at most once per generation: racing
        groups that all saw the same breakage respawn one pool, not one
        each) or raise when the budget is spent."""
        stale = None
        with self._respawn_lock:
            if self._generation == generation:
                if self._restarts_left <= 0:
                    raise ServiceError(
                        "process worker pool crashed and the restart "
                        "budget is exhausted"
                    )
                stale, self.processes = self.processes, self._spawn_pool()
                self._generation += 1
                self._restarts_left -= 1
                self.restarts += 1
        if stale is not None:
            stale.shutdown(wait=False)

    def _columns_for(self, snapshot) -> dict:
        key = (snapshot.name, snapshot.uid)
        with self._columns_lock:
            found = self._columns_cache.get(key)
            if found is None:
                found = snapshot.arena.columns()
                self._columns_cache[key] = found
                while len(self._columns_cache) > _WORKER_ARENA_CAP:
                    self._columns_cache.popitem(last=False)
        return found

    def _evaluate_group_once(
        self, pool, snapshot, texts: list, trace_ctxs: Optional[dict]
    ) -> GroupResult:
        # First try by reference — the worker may already hold this
        # arena (keyed by its process-unique uid); ship the columns
        # only when it says so.  The trace contexts ride along both
        # times: they are a few small strings per sampled text.
        status, results, spans = pool.submit(
            _worker_evaluate, snapshot.name, snapshot.uid, None, texts, trace_ctxs
        ).result()
        if status == NEED_COLUMNS:
            status, results, spans = pool.submit(
                _worker_evaluate,
                snapshot.name,
                snapshot.uid,
                self._columns_for(snapshot),
                texts,
                trace_ctxs,
            ).result()
        if status != "ok":  # pragma: no cover - defensive
            raise ServiceError(f"process worker returned {status!r}")
        # Error outcomes crossed the boundary as message strings;
        # rebuild them as exceptions for the per-waiter forwarding.
        return GroupResult(
            [
                (kind, value if kind == "ok" else ValueError(value))
                for kind, value in results
            ],
            spans_by_text=spans,
        )

    def evaluate_group(
        self, snapshot, texts: list, evaluate_fn, trace_ctxs: Optional[dict] = None
    ) -> GroupResult:
        retries = 0
        while True:
            with self._respawn_lock:
                generation = self._generation
                pool = self.processes
            try:
                result = self._evaluate_group_once(pool, snapshot, texts, trace_ctxs)
                result.retries = retries
                return result
            except BrokenExecutor:
                # A worker died mid-group (OOM kill, segfault, injected
                # crash).  Replace the pool — bounded by the restart
                # budget — and re-run: the group is a pure snapshot
                # read, so the retry observes exactly the same state.
                # The spans of the dead attempt die with the worker;
                # the retry count survives on the stitched trace.
                self._respawn(generation)
                retries += 1

    def shutdown(self) -> None:
        with self._respawn_lock:
            pool = self.processes
        pool.shutdown(wait=True)
        super().shutdown()


def make_workers(mode: str, workers: int):
    """The executor for a :class:`~repro.service.service.ServiceConfig`
    mode string (``"thread"`` or ``"process"``)."""
    if mode == "thread":
        return ThreadWorkers(workers)
    if mode == "process":
        return ProcessWorkers(workers)
    raise ServiceError(f"unknown worker mode {mode!r}; use 'thread' or 'process'")
