"""The concurrent query service: MVCC snapshot reads, request
batching, and a parallel worker pool over one resident
:class:`~repro.store.store.ViewStore`.

Concurrency discipline — **single writer, many readers**:

* Reads against a plain document never touch the store's locks while
  evaluating.  Each request *pins* the document's current committed
  version (:meth:`~repro.store.store.ViewStore.pin` — the document
  lock is held only for the version read), then runs entirely against
  that frozen, immutable arena.  Writers staging or committing new
  versions never block pinned readers and can never corrupt them: a
  commit mutates the live tree and bumps the version counter, but the
  old arena object is untouched, so every in-flight reader finishes
  against exactly the version it started with.  ``snapshot_reads``
  counts reads served this way; ``stale_reads`` counts those whose
  pinned version had already been superseded by the time they
  finished — the price of never blocking, made visible.
* Writes (``load``/``define_view``/``stage``/``commit``/``rollback``)
  serialize on one service-wide write lock, so the store only ever
  sees a single writer.
* View targets and staged-preview reads evaluate over the live Node
  tree and therefore fall back to the store's lock-holding read path
  (counted as ``locked_reads``).

Request batching: incoming queries land on a bounded admission queue;
a dispatcher thread drains it in small **windows** (a few ms) and
groups the window's requests two ways.  Identical ``(document,
query)`` requests — which, within one window, necessarily pin the
same version — **coalesce** into a single evaluation whose result
fans out to every waiter.  Distinct queries against the same document
group into one worker task that pins the snapshot once and reuses the
same prepared statements and warm DFA tables across all of them.  A
per-``(document, version, query)`` memo keeps the coalescing effective
*across* windows until the next commit changes the version.

Admission control: the queue is bounded; when it is full the request
is shed immediately with the typed
:class:`~repro.service.errors.OverloadedError` (back-pressure, not
collapse).  Each request may carry a **deadline**; expired requests
are answered with :class:`~repro.service.errors.DeadlineError` and —
when every waiter for an evaluation has expired — the evaluation
itself is skipped.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Optional

from repro.automata.arena_run import serialize_arena_items
from repro.engine.engine import Engine
from repro.engine.planner import READ_COST_ARENA
from repro.lru import LRUCache
from repro.obs import (
    NULL_TRACE,
    MetricsRegistry,
    Profile,
    SlowQueryLog,
    Tracer,
    profiled,
    render_prometheus,
    span,
    stitch,
)
from repro.obs.registry import COUNT_BUCKETS
from repro.service.errors import (
    DeadlineError,
    OverloadedError,
    ServiceClosedError,
)
from repro.service.workers import make_workers
from repro.store.documents import Snapshot
from repro.store.errors import StoreError
from repro.store.store import ViewStore
from repro.xmltree.serializer import serialize
from repro.xquery.arena_eval import ArenaEvaluator

__all__ = ["QueryService", "ServiceConfig"]


class ServiceConfig:
    """Tuning knobs for a :class:`QueryService`.

    * ``workers`` — worker pool size (threads; and processes in
      ``mode="process"``).
    * ``mode`` — ``"thread"`` (default) or ``"process"`` (opt-in
      CPU-parallel arena scans; arenas are shipped to workers as
      pickled columns and rebuilt there).
    * ``batch_window`` — seconds the dispatcher waits after the first
      queued request to collect a batch.  ``0`` still coalesces
      whatever is already queued.
    * ``max_queue`` — admission-control bound; beyond it requests are
      shed with :class:`~repro.service.errors.OverloadedError`.
    * ``memo_size`` — entries in the per-(document, version, query)
      result memo.
    * ``default_deadline`` — seconds applied to requests that do not
      carry their own deadline (``None``: wait forever).
    * ``metrics`` — ``False`` disables the whole telemetry substrate
      (registry *and* tracing): every instrument becomes a shared
      no-op, the fast path ``benchmarks/bench_service.py`` measures
      the instrumented path against.
    * ``trace_sample`` — record every N-th request's lifecycle trace
      (``0`` disables tracing; the default samples 1/16 so tracing
      stays within the instrumentation-overhead budget).
    * ``trace_ring`` — how many finished trace records are buffered
      (older records fall off; see the ``traces`` wire op).
    * ``profile_sample`` — collect a plan-vs-actual execution profile
      on every N-th *sampled* evaluation (``0`` disables profiling).
      Profiles feed the planner's estimate-vs-actual drift probe and
      ride along in slow-query entries; they are sampled separately
      from tracing because the profiled scan twin is markedly slower
      than the bare hot loop, and coalesced workloads make nearly
      every evaluation trace-sampled.
    * ``slow_threshold`` — seconds of submit→finish latency beyond
      which a request is captured in the slow-query log with its full
      trace and profile (negative disables the log entirely).
    * ``slow_ring`` — how many slow-query entries are buffered (older
      entries fall off; see the ``slowlog`` wire op).
    """

    __slots__ = (
        "workers", "mode", "batch_window", "max_queue", "memo_size",
        "default_deadline", "metrics", "trace_sample", "trace_ring",
        "profile_sample", "slow_threshold", "slow_ring",
    )

    def __init__(
        self,
        workers: int = 4,
        mode: str = "thread",
        batch_window: float = 0.002,
        max_queue: int = 256,
        memo_size: int = 1024,
        default_deadline: Optional[float] = None,
        metrics: bool = True,
        trace_sample: int = 16,
        trace_ring: int = 256,
        profile_sample: int = 4,
        slow_threshold: float = 0.25,
        slow_ring: int = 128,
    ):
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        if trace_sample < 0:
            raise ValueError(f"trace_sample must be >= 0, got {trace_sample}")
        if profile_sample < 0:
            raise ValueError(
                f"profile_sample must be >= 0, got {profile_sample}"
            )
        if slow_ring < 1:
            raise ValueError(f"slow_ring must be positive, got {slow_ring}")
        self.workers = workers
        self.mode = mode
        self.batch_window = batch_window
        self.max_queue = max_queue
        self.memo_size = memo_size
        self.default_deadline = default_deadline
        self.metrics = metrics
        self.trace_sample = trace_sample
        self.trace_ring = trace_ring
        self.profile_sample = profile_sample
        self.slow_threshold = slow_threshold
        self.slow_ring = slow_ring


class _Request:
    """One queued read: target, query text, waiter, deadline, trace."""

    __slots__ = (
        "target", "text", "staged", "deadline", "future", "trace", "submitted",
    )

    def __init__(
        self,
        target: str,
        text: str,
        staged: bool,
        deadline: Optional[float],
        trace=NULL_TRACE,
    ):
        self.target = target
        self.text = text
        self.staged = staged
        self.deadline = deadline  # absolute time.monotonic() instant
        self.future: Future = Future()
        #: The request's lifecycle trace (NULL_TRACE when unsampled).
        self.trace = trace
        self.submitted = time.perf_counter()

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


#: Queue sentinel that tells the dispatcher to drain and exit.
_STOP = object()


#: Legacy metric key → registry metric name.  ``metrics()`` keeps
#: returning the short keys the tests and benchmarks always read, but
#: the counters themselves live in the registry under the
#: ``layer.component.metric`` scheme.
_METRIC_NAMES = {
    "requests": "service.requests.total",
    "shed": "service.requests.shed",
    "deadline_misses": "service.requests.deadline_miss",
    "batches": "service.dispatch.batches",
    "evaluations": "service.dispatch.evaluations",
    "coalesced": "service.dispatch.coalesced",
    "memo_hits": "service.dispatch.memo_hits",
    "memo_retained": "service.dispatch.memo_retained",
    "snapshot_reads": "service.reads.snapshot",
    "stale_reads": "service.reads.stale",
    "locked_reads": "service.reads.locked",
    "transforms": "service.reads.transform",
}


class QueryService:
    """A concurrent front for one :class:`ViewStore` (see the module
    docstring for the concurrency and batching discipline)."""

    # guarded-by[_closed]: self._admission_lock

    def __init__(
        self,
        store: Optional[ViewStore] = None,
        engine: Optional[Engine] = None,
        config: Optional[ServiceConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        checkpoint=None,
        slow_sink=None,
    ):
        self.store = store if store is not None else ViewStore()
        self.config = config if config is not None else ServiceConfig()
        #: Called (under the write lock) after every admin write that
        #: changes the *document set* — load/put/define_view/drop.  The
        #: WAL only records commits, and recovery skips records for
        #: documents it does not know, so ``repro serve`` passes a
        #: save_store closure here: the document set is always covered
        #: by a checkpoint, commits by the log.  ``None`` → no-op.
        self.checkpoint = checkpoint
        # The engine shares the store's planner so strategy-choice
        # counters tally in one place; its compiled cache is what the
        # snapshot read path and the transform op prepare against.
        self.engine = (
            engine if engine is not None else Engine(planner=self.store.planner)
        )
        # One registry per service (unless injected): its snapshot is
        # what stats()/the `metrics` wire op return, and what the
        # store's and engine's probes report into.
        self.registry = (
            registry
            if registry is not None
            else MetricsRegistry(enabled=self.config.metrics)
        )
        self.tracer = Tracer(
            ring=self.config.trace_ring,
            sample_every=self.config.trace_sample,
            enabled=self.config.metrics and self.config.trace_sample > 0,
        )
        self._counters = {
            key: self.registry.counter(name) for key, name in _METRIC_NAMES.items()
        }
        #: Client-observed request latency (submit → result), seconds.
        self._latency = self.registry.histogram("service.request.latency")
        #: One observation per arena evaluation group handed to the pool.
        self._eval_latency = self.registry.histogram("service.eval.latency")
        #: Requests per dispatcher window.
        self._batch_size = self.registry.histogram(
            "service.dispatch.batch_size", buckets=COUNT_BUCKETS
        )
        self.store.bind_metrics(self.registry)
        self.engine.bind_metrics(self.registry)
        self.registry.probe("service.queue.depth", lambda: self._queue.qsize())
        self.registry.probe("service.memo.cache", lambda: self._memo.stats())
        self.registry.probe("service.trace.ring", lambda: self.tracer.stats())
        self.registry.probe(
            "service.workers.restarts",
            lambda: getattr(self._workers, "restarts", 0),
        )
        #: Any request slower than the threshold is captured here with
        #: its stitched trace and (when sampled) its execution profile.
        #: *slow_sink* additionally receives each entry as it is
        #: recorded — ``repro serve`` passes a JSONL write-through.
        self._slowlog = SlowQueryLog(
            threshold=self.config.slow_threshold if self.config.metrics else -1.0,
            ring=self.config.slow_ring,
            sink=slow_sink,
        )
        self.registry.probe("service.slowlog.ring", self._slowlog.stats)
        # Which sampled evaluations additionally pay for a profile:
        # next(self._profile_tick) is atomic under the GIL, so worker
        # threads can draw from it without a lock.
        self._profile_tick = itertools.count()
        # Keyed (name, arena uid, query text): the uid is process-
        # unique per arena build, so entries can never alias across a
        # commit OR a drop-and-reload (which restarts versions at 1) —
        # even if an in-flight group publishes its result after the
        # invalidation in drop()/commit() has already run.
        self._memo = LRUCache(self.config.memo_size)
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.config.max_queue)
        self._write_lock = threading.RLock()
        # Makes the closed-check and the enqueue atomic against
        # close(): without it a request admitted between close()'s
        # flag-set and the dispatcher's final drain would sit on the
        # queue forever with nobody left to serve it.
        self._admission_lock = threading.Lock()
        self._closed = False
        self._workers = make_workers(self.config.mode, self.config.workers)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatch", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # Reads (MVCC snapshot path, batched)
    # ------------------------------------------------------------------

    def query(
        self,
        target: str,
        query_text: str,
        *,
        deadline: Optional[float] = None,
        staged: bool = False,
        trace_id: Optional[str] = None,
        parent_span: Optional[str] = None,
    ) -> list:
        """Answer a query as serialized strings, through the batcher.

        *deadline* is seconds from now (default: the config's
        ``default_deadline``); when it passes before the result is
        ready, :class:`DeadlineError` is raised here — the evaluation
        may still finish in the background and warm the memo.

        *trace_id*/*parent_span* adopt a caller-opened trace context
        (cross-process propagation from :class:`~repro.service.client.
        Client`): the service span joins that trace instead of minting
        its own id, so the client can stitch one end-to-end tree.
        """
        request = self.submit(
            target, query_text, deadline=deadline, staged=staged,
            trace_id=trace_id, parent_span=parent_span,
        )
        timeout = None
        if request.deadline is not None:
            # Small slack over the dispatcher's own expiry check so a
            # request failed *by* the dispatcher reports its typed
            # error rather than racing this wait.
            timeout = max(0.0, request.deadline - time.monotonic()) + 0.25
        try:
            result = request.future.result(timeout=timeout)
        except FutureTimeoutError:
            self._count("deadline_misses")
            raise DeadlineError(f"no result within {timeout:.3f}s") from None
        except DeadlineError:
            self._count("deadline_misses")
            raise
        self._latency.observe(time.perf_counter() - request.submitted)
        return result

    def query_direct(self, target: str, query_text: str) -> list:
        """The serial one-request-at-a-time reference path: pin the
        snapshot, evaluate, serialize — same MVCC read, but no
        batching window, no coalescing, no per-version memo.  This is
        what a naive server would do per request, and the baseline the
        service benchmarks compare the batched path against.
        """
        if self._is_closed():
            raise ServiceClosedError()
        snapshot = self.store.pin(target)
        self._count("requests")
        self._count("snapshot_reads")
        start = time.perf_counter()
        with self.tracer.trace("service.query_direct", target=target):
            result = self._evaluate_snapshot(snapshot, query_text)
        self._latency.observe(time.perf_counter() - start)
        return result

    def submit(
        self,
        target: str,
        query_text: str,
        *,
        deadline: Optional[float] = None,
        staged: bool = False,
        trace_id: Optional[str] = None,
        parent_span: Optional[str] = None,
    ) -> _Request:
        """Enqueue a read without waiting; returns the request whose
        ``future`` resolves to the serialized result list."""
        if deadline is None:
            deadline = self.config.default_deadline
        absolute = time.monotonic() + deadline if deadline is not None else None
        request = _Request(
            target, query_text, staged, absolute,
            trace=self.tracer.trace(
                "service.query", trace_id=trace_id, parent_span=parent_span,
                target=target, query=query_text,
            ),
        )
        with self._admission_lock:
            if self._closed:
                raise ServiceClosedError()
            try:
                self._queue.put_nowait(request)
            except queue.Full:
                self._count("shed")
                request.trace.finish(outcome="shed")
                raise OverloadedError(
                    f"{self.config.max_queue} requests queued"
                ) from None
        self._count("requests")
        return request

    # ------------------------------------------------------------------
    # The batching dispatcher
    # ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        window = self.config.batch_window
        while True:
            item = self._queue.get()
            stopping = item is _STOP
            batch = [] if stopping else [item]
            if not stopping and window > 0:
                cutoff = time.monotonic() + window
                while True:
                    remaining = cutoff - time.monotonic()
                    if remaining <= 0:
                        break
                    try:
                        nxt = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                    if nxt is _STOP:
                        stopping = True
                        break
                    batch.append(nxt)
            if stopping:
                # Graceful drain: everything already admitted is served.
                while True:
                    try:
                        batch.append(self._queue.get_nowait())
                    except queue.Empty:
                        break
            if batch:
                self._dispatch(batch)
            if stopping:
                return

    def _dispatch(self, batch: list) -> None:
        """Group one window's requests and hand them to the pool."""
        self._count("batches")
        self._batch_size.observe(float(len(batch)))
        doc_groups: dict = {}
        for request in batch:
            if request.staged or request.target in self.store.views:
                self._workers.submit(self._run_fallback, request)
            else:
                doc_groups.setdefault(request.target, {}).setdefault(
                    request.text, []
                ).append(request)
        for name, by_text in doc_groups.items():
            self._workers.submit(self._run_doc_group, name, by_text)

    def _run_doc_group(self, name: str, by_text: dict) -> None:
        """One pool task per document per window: pin the snapshot
        once, then answer every distinct query against it.

        Runs as a discarded pool future, so it must never let an
        exception escape with waiters unresolved — the final except
        clause forwards anything unexpected (a broken process pool, a
        died worker) to every future still pending, instead of leaving
        deadline-less clients hanging forever.
        """
        try:
            self._answer_doc_group(name, by_text)
        except Exception as exc:  # noqa: BLE001 - forwarded to every waiter
            for requests in by_text.values():
                for request in requests:
                    if not request.future.done():
                        request.future.set_exception(exc)

    def _answer_doc_group(self, name: str, by_text: dict) -> None:
        total = sum(len(reqs) for reqs in by_text.values())
        snapshot = self.store.pin(name)
        self._count("snapshot_reads", total)
        now = time.monotonic()
        dispatched = time.perf_counter()
        for requests in by_text.values():
            for request in requests:
                # Queue wait is measured here because submit() ran on a
                # different thread than the one that evaluates.
                request.trace.record_span("queue", dispatched - request.submitted)
        todo: list = []
        for text, requests in by_text.items():
            key = (name, snapshot.uid, text)
            cached = self._memo.get(key)
            if cached is not None:
                self._count("memo_hits", len(requests))
                self._count("coalesced", len(requests) - 1)
                for request in requests:
                    request.future.set_result(cached)
                    request.trace.finish(outcome="memo")
                self._maybe_slow(
                    requests[0], "memo", snapshot.version,
                    coalesced=len(requests) - 1,
                    queue_s=dispatched - requests[0].submitted,
                )
            elif all(request.expired(now) for request in requests):
                for request in requests:
                    request.future.set_exception(DeadlineError("expired in queue"))
                    request.trace.finish(outcome="deadline")
                self._maybe_slow(
                    requests[0], "deadline", snapshot.version,
                    queue_s=dispatched - requests[0].submitted,
                )
            else:
                todo.append(text)
        if todo:
            # Coalesced waiters share one evaluation, so only a single
            # sampled trace per distinct text — the primary — carries
            # the engine's plan/scan/serialize spans (and, in process
            # mode, the propagated context the worker's spans join).
            primaries = {
                text: next(
                    (r.trace for r in by_text[text] if r.trace.sampled),
                    NULL_TRACE,
                )
                for text in todo
            }
            trace_ctxs = {
                text: {"trace": t.trace_id, "parent_span": t.span_id}
                for text, t in primaries.items()
                if t.sampled
            }
            profiles: dict = {}

            def evaluate(snapshot: Snapshot, text: str) -> list:
                begin = time.perf_counter()
                primary = primaries[text]
                sample = self.config.profile_sample
                if (
                    primary.sampled
                    and sample
                    and next(self._profile_tick) % sample == 0
                ):
                    # Every N-th sampled request pays for a
                    # plan-vs-actual profile too: the arena scan is the
                    # "scan" strategy with an exact node estimate, and
                    # the profiled twin of select_indices fills in the
                    # actual visit/prune/transition counts.
                    prof = Profile()
                    n = len(snapshot.arena)
                    prof.set_plan("scan", "arena", READ_COST_ARENA * n, n)
                    with primary.activate(), profiled(prof):
                        result = self._evaluate_snapshot(snapshot, text)
                    prof.finish()
                    self.store.planner.observe_actual(prof)
                    profiles[text] = prof.snapshot()
                else:
                    with primary.activate():
                        result = self._evaluate_snapshot(snapshot, text)
                self._eval_latency.observe(time.perf_counter() - begin)
                return result

            outcomes = self._workers.evaluate_group(
                snapshot, todo, evaluate, trace_ctxs=trace_ctxs
            )
            spans_by_text = getattr(outcomes, "spans_by_text", {})
            retries = getattr(outcomes, "retries", 0)
            for text, (status, value) in zip(todo, outcomes):
                requests = by_text[text]
                primary = primaries[text]
                # Splice the worker-minted child spans (process mode)
                # into the primary trace before it finishes, so the
                # published record is already one stitched subtree.
                worker_spans = spans_by_text.get(text)
                if worker_spans:
                    primary.add_spans(worker_spans)
                if retries:
                    primary.note(worker_retries=retries)
                if status != "ok":
                    for request in requests:
                        request.future.set_exception(value)
                        request.trace.finish(outcome="error", error=str(value))
                    self._maybe_slow(
                        requests[0], "error", snapshot.version,
                        queue_s=dispatched - requests[0].submitted,
                    )
                    continue
                self._count("evaluations")
                self._count("coalesced", len(requests) - 1)
                self._memo.put((name, snapshot.uid, text), value)
                for request in requests:
                    request.future.set_result(value)
                    request.trace.finish(
                        outcome="ok", coalesced=len(requests) - 1
                    )
                self._maybe_slow(
                    requests[0], "ok", snapshot.version,
                    coalesced=len(requests) - 1,
                    profile=profiles.get(text),
                    queue_s=dispatched - requests[0].submitted,
                )
        # Stale-read accounting: did a commit supersede the pinned
        # version while we were answering from it?
        try:
            current = self.store.documents.get(name).version
        except StoreError:  # document dropped mid-flight
            current = snapshot.version
        if current != snapshot.version:
            self._count("stale_reads", total)

    def _maybe_slow(
        self,
        request: _Request,
        outcome: str,
        snapshot_version=None,
        *,
        coalesced: int = 0,
        profile: Optional[dict] = None,
        queue_s: Optional[float] = None,
    ) -> None:
        """Capture *request* in the slow-query log when its submit→
        finish latency crossed the threshold.  Called after the trace
        finished so the entry can embed the full record (None for
        unsampled requests — the counters still tell the story)."""
        dur = time.perf_counter() - request.submitted
        if not self._slowlog.should_record(dur):
            return
        self._slowlog.record({
            "ts": time.time(),
            "target": request.target,
            "query": request.text,
            "outcome": outcome,
            "dur_ms": round(dur * 1000.0, 3),
            "queue_ms": (
                round(queue_s * 1000.0, 3) if queue_s is not None else None
            ),
            "snapshot_version": snapshot_version,
            "coalesced": coalesced,
            "trace": request.trace.record,
            "profile": profile,
        })

    def _evaluate_snapshot(self, snapshot: Snapshot, text: str) -> list:
        """One arena read, entirely lock-free: compiled artifacts come
        from the engine's (thread-safe) caches, evaluation runs over
        the immutable snapshot, matches serialize straight from the
        columns."""
        cache = self.engine.cache
        evaluator = ArenaEvaluator(snapshot.arena, cache.selecting_nfa_for)
        with span("scan"):
            refs = evaluator.evaluate_refs(cache.user_query(text))
        with span("serialize"):
            return serialize_arena_items(snapshot.arena, refs)

    def _run_fallback(self, request: _Request) -> None:
        """View targets and staged previews: the store's lock-holding
        serialized read path, one request at a time."""
        self._count("locked_reads")
        queue_s = time.perf_counter() - request.submitted
        request.trace.record_span("queue", queue_s)
        if request.expired(time.monotonic()):
            request.future.set_exception(DeadlineError("expired in queue"))
            request.trace.finish(outcome="deadline")
            self._maybe_slow(request, "deadline", queue_s=queue_s)
            return
        try:
            with request.trace.activate():
                result = self.store.query_serialized(
                    request.target, request.text, include_staged=request.staged
                )
        except Exception as exc:  # noqa: BLE001 - forwarded to the waiter
            request.future.set_exception(exc)
            request.trace.finish(outcome="error", error=str(exc))
            self._maybe_slow(request, "error", queue_s=queue_s)
            return
        request.future.set_result(result)
        request.trace.finish(outcome="locked")
        self._maybe_slow(request, "locked", queue_s=queue_s)

    # ------------------------------------------------------------------
    # Writes (single-writer discipline)
    # ------------------------------------------------------------------

    def _is_closed(self) -> bool:
        """Read the closed flag under its lock.  The seed read it bare
        from the read paths; on CPython that "worked", but the flag's
        contract (no admission after close) only holds when the check
        synchronizes with close()'s write.  The lock is uncontended in
        steady state, so this costs one atomic acquire per call.

        Ordering: writers hold ``_write_lock`` when they reach this
        (write → admission), while :meth:`close` takes the two locks
        strictly in sequence, never nested — no cycle either way."""
        with self._admission_lock:
            return self._closed

    def _check_open(self) -> None:
        """Refuse writes on a closed service (called INSIDE the write
        lock): after :meth:`close` returns, the store is guaranteed
        quiescent — what lets ``repro serve`` save the durable state
        without racing a straggling connection thread's commit."""
        if self._is_closed():
            raise ServiceClosedError()

    def _checkpoint_documents(self) -> None:
        """Make an admin write durable right away (holds the write
        lock).  Commits ride the WAL; changes to the document/view
        *set* do not, so they checkpoint eagerly instead."""
        if self.checkpoint is not None:
            self.checkpoint()

    def load(self, name: str, path: str, *, replace: bool = False) -> dict:
        with self._write_lock:
            self._check_open()
            doc = self.store.load(name, path, replace=replace)
            self._checkpoint_documents()
            return {"name": doc.name, "version": doc.version, "nodes": doc.root.size()}

    def put(self, name: str, xml: str, *, replace: bool = False) -> dict:
        with self._write_lock:
            self._check_open()
            doc = self.store.put(name, xml, replace=replace)
            self._checkpoint_documents()
            return {"name": doc.name, "version": doc.version, "nodes": doc.root.size()}

    def define_view(self, name: str, base: str, transform_text: str) -> dict:
        with self._write_lock:
            self._check_open()
            view = self.store.define_view(name, base, transform_text)
            doc_name, stack = self.store.views.stack(name)
            self._checkpoint_documents()
            return {"name": view.name, "base": view.base, "depth": len(stack),
                    "document": doc_name}

    def drop(self, name: str) -> dict:
        with self._write_lock:
            self._check_open()
            self.store.drop(name)
            self._memo.invalidate(lambda key: key[0] == name)
            self._checkpoint_documents()
            return {"name": name}

    def stage(self, name: str, transform_text: str) -> dict:
        with self._write_lock:
            self._check_open()
            depth = self.store.stage(name, transform_text)
            return {"name": name, "staged": depth}

    def commit(self, name: str, transform_text: Optional[str] = None) -> dict:
        """Apply staged updates; readers pinned to the old version are
        unaffected, new pins observe the new version.

        A spliced commit holds the document lock only to install the
        already-built arena (the splice itself runs outside it), so
        snapshot readers barely stall; memo entries whose query is
        provably label-disjoint from the delta are re-keyed onto the
        new arena uid instead of dropped.  A no-op commit (nothing
        staged) touches no cache at all.
        """
        with self._write_lock:
            self._check_open()
            delta = self.store.commit_delta(name, transform_text)
            if delta.entries == 0:
                return {
                    "name": name, "version": delta.new_version,
                    "spliced": False, "entries": 0,
                }
            if delta.spliced and delta.labels is not None and delta.new_uid:

                def remap(key):
                    if key[0] != name:
                        return key
                    if key[1] == delta.old_uid and self.store.commit_unaffected(
                        delta, key[2]
                    ):
                        return (name, delta.new_uid, key[2])
                    return None

                retained, _ = self._memo.rekey(remap)
                if retained:
                    self._count("memo_retained", retained)
            else:
                # Fallback rebuild: stale memo entries can never be
                # served again (the key is the arena uid); drop them
                # rather than waiting for LRU.
                self._memo.invalidate(lambda key: key[0] == name)
            return {
                "name": name, "version": delta.new_version,
                "spliced": delta.spliced, "entries": delta.entries,
            }

    def rollback(self, name: str, count: Optional[int] = None) -> dict:
        with self._write_lock:
            self._check_open()
            dropped = self.store.rollback(name, count)
            return {"name": name, "dropped": dropped}

    # ------------------------------------------------------------------
    # Hypothetical transforms (MVCC, read-only)
    # ------------------------------------------------------------------

    def transform(self, name: str, transform_text: str) -> str:
        """Evaluate a transform query against the pinned snapshot of
        document *name* and return the serialized result tree.

        Purely hypothetical — nothing is staged or committed — and
        lock-free: the prepared transform runs against the immutable
        arena (thawing internally as its planned strategy requires),
        so a concurrent commit cannot tear the tree being read.
        """
        if self._is_closed():
            raise ServiceClosedError()
        snapshot = self.store.pin(name)
        self._count("transforms")
        with self.tracer.trace("service.transform", target=name):
            prepared = self.engine.prepare_transform(transform_text)
            result = prepared.run(snapshot.arena)
            with span("serialize"):
                return serialize(result)

    # ------------------------------------------------------------------
    # Lifecycle and introspection
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Graceful shutdown: stop admitting, serve everything already
        queued, stop the dispatcher and worker pool, and wait out any
        in-flight write.  When this returns the store is quiescent —
        no reader or writer of this service will touch it again."""
        with self._admission_lock:
            if self._closed:
                return
            self._closed = True
            # Under the admission lock: once _STOP is enqueued no new
            # request can slip in behind it unserved.  (put() may block
            # on a full queue; the dispatcher drains without ever
            # taking this lock, so it always makes room.)
            self._queue.put(_STOP)
        self._dispatcher.join()
        self._workers.shutdown()
        with self._write_lock:
            # A write that was already inside the lock finishes here;
            # any writer queued behind it sees _closed and is refused.
            pass

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _count(self, key: str, amount: int = 1) -> None:
        self._counters[key].inc(amount)

    def metrics(self) -> dict:
        """The service tallies under their legacy short keys (the
        counters themselves live in the registry — see
        :data:`_METRIC_NAMES`)."""
        return {key: counter.value for key, counter in self._counters.items()}

    def traces(self, drain: bool = False, stitched: bool = False) -> list:
        """The buffered trace records (destructively when *drain*).

        With *stitched*, records sharing a trace id are reassembled
        into per-trace summaries (root, span count, orphans, well-
        formedness) — see :func:`repro.obs.stitch`.  Worker spans are
        already embedded in the service records they were spliced
        into, so a service-side stitch covers the whole server half.
        """
        records = self.tracer.drain() if drain else self.tracer.records()
        return stitch(records) if stitched else records

    def slowlog(self, drain: bool = False) -> dict:
        """The slow-query ring: buffered entries (destructively when
        *drain*) plus the log's counters."""
        return {
            "entries": self._slowlog.entries(drain=drain),
            "stats": self._slowlog.stats(),
        }

    def metrics_text(self) -> str:
        """The registry snapshot in Prometheus text exposition format
        (what ``repro serve --expose`` serves at ``/metrics``)."""
        return render_prometheus(self.registry.snapshot())

    def stats(self) -> dict:
        return {
            "service": {
                **self.metrics(),
                "mode": self._workers.mode,
                "workers": self.config.workers,
                "batch_window_ms": self.config.batch_window * 1000.0,
                "max_queue": self.config.max_queue,
                "queue_depth": self._queue.qsize(),
                "memo": self._memo.stats(),
            },
            "store": self.store.stats(),
            "metrics": self.registry.snapshot(),
            "traces": self.tracer.stats(),
            "slowlog": self._slowlog.stats(),
        }
