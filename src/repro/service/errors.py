"""Service-layer exceptions, each carrying a stable wire ``code``.

Every service error subclasses :class:`ValueError` (matching the
store's convention) so the CLI boundary's one-line error handling
covers the service for free.  The ``code`` attribute is the string
that crosses the line protocol: the server serializes it into error
frames, and :func:`error_for` rebuilds the matching typed exception on
the client side — a shed request raises :class:`OverloadedError` in
the *client's* process, not a generic RPC failure.
"""

from __future__ import annotations

from repro.store.errors import StoreError

__all__ = [
    "BadRequestError",
    "DeadlineError",
    "OverloadedError",
    "ResponseLostError",
    "RetryExhaustedError",
    "ServiceClosedError",
    "ServiceError",
    "TransportError",
    "error_for",
]


class ServiceError(ValueError):
    """Base class for every error raised by :mod:`repro.service`."""

    code = "error"


class OverloadedError(ServiceError):
    """Admission control shed the request: the bounded request queue
    was full.  Load-shedding is deliberate back-pressure — the client
    should retry with jitter or slow down, not treat this as a crash."""

    code = "overloaded"

    def __init__(self, detail: str = ""):
        super().__init__(
            "service overloaded: request queue full"
            + (f" ({detail})" if detail else "")
        )


class DeadlineError(ServiceError):
    """The request's deadline expired before its result was ready.

    The evaluation may still complete in the background (its result
    lands in the per-version memo for later readers); only this
    caller's wait is abandoned.
    """

    code = "deadline"

    def __init__(self, detail: str = ""):
        super().__init__(
            "request deadline exceeded" + (f" ({detail})" if detail else "")
        )


class BadRequestError(ServiceError):
    """A malformed protocol frame: not JSON, unknown op, or missing a
    required argument."""

    code = "bad-request"


class ServiceClosedError(ServiceError):
    """The service (or the connection) is shutting down and no longer
    accepts requests."""

    code = "closed"

    def __init__(self, detail: str = "service is closed"):
        super().__init__(detail)


class TransportError(ServiceError):
    """The request was **never sent**: connecting (or reconnecting)
    failed outright.  Always safe to retry — the server saw nothing —
    though the client only auto-retries idempotent reads.
    """

    code = "transport"


class ResponseLostError(ServiceError):
    """The request was sent (or may have been) and the response was
    lost: a timeout, EOF, or socket error after the connection was
    established.  The server **may have executed it** — only idempotent
    reads are safe to retry; a lost write must surface to the caller,
    who alone knows whether re-issuing it is correct.
    """

    code = "response-lost"


class RetryExhaustedError(ServiceError):
    """Every retry attempt failed; ``last_error`` is the final one."""

    code = "retry-exhausted"

    def __init__(self, op: str, attempts: int, last_error: ServiceError):
        super().__init__(
            f"op {op!r} failed after {attempts} attempt(s): {last_error}"
        )
        self.op = op
        self.attempts = attempts
        self.last_error = last_error


#: Wire codes → exception classes, for the client-side rebuild.
_BY_CODE = {
    cls.code: cls
    for cls in (OverloadedError, DeadlineError, BadRequestError, ServiceClosedError)
}


def error_for(code: str, message: str) -> ValueError:
    """The typed exception for an error frame received over the wire.

    Known service codes rebuild their class; ``store`` errors become a
    :class:`~repro.store.errors.StoreError` (so client code can catch
    unknown-name/duplicate-name conditions the same way it would
    against an in-process :class:`~repro.store.store.ViewStore`);
    anything else is a plain :class:`ServiceError`.
    """
    cls = _BY_CODE.get(code)
    if cls is not None:
        error = cls.__new__(cls)
        ValueError.__init__(error, message)
        return error
    if code == "store":
        return StoreError(message)
    error = ServiceError(message)
    error.code = code
    return error
