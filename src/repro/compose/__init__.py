"""Composition of user queries with transform queries (Section 4).

Given a transform query ``Qt`` and a user query ``Q``, both methods
produce the answer of ``Q(Qt(T))``; the Compose Method does it without
materializing ``Qt(T)``:

* :func:`naive_compose` — the Naive Composition Method: evaluate the
  transform fully, then run the user query on the result.
* :func:`compose` / :func:`evaluate_composed` — the Compose Method:
  rewrite ``Q`` against the selecting NFA of ``Qt`` into a single
  composed query that runs directly on the original document, touching
  only the parts the user query needs.
"""

from repro.compose.naive import naive_compose
from repro.compose.compose import compose, evaluate_composed

__all__ = ["compose", "evaluate_composed", "naive_compose"]
