"""The Compose Method (Section 4): rewrite a user query against the
selecting NFA of a transform query into one composed query.

Strategy (per DESIGN.md):

* The user path is rewritten into a cascade of ``for`` loops, one per
  step (the paper's ``for $y1 … for $yn`` form).  Along the cascade the
  composer tracks the *definite* set of ``Mp`` states at the bound
  node.
* A step whose entered states carry qualifiers splits into runtime
  branches (the paper's ``if empty($y/C) then … else …``); each branch
  continues with a definite state set.
* A branch in which the final state is alive applies the update's
  effect in place: a deleted binding contributes nothing, a replaced
  binding continues inside the constant replacement, a renamed binding
  survives only if the new label still matches, an inserted-into
  binding is remembered (``patched``) so the constant element joins the
  next step's iteration and the returned subtree.
* ``where`` operands, user-step qualifiers and returned paths are
  classified by the exact word walk of :mod:`repro.compose.walk`
  (UNCHANGED / EMPTY / UNKNOWN — Q2's compile-time reasoning is the
  EMPTY case).
* Whenever exact rewriting is impossible (wildcard or descendant user
  steps, too many simultaneous qualifiers, UNKNOWN classifications) the
  composer splices a **localized** ``topDown`` call on the bound
  variable (Q3's ``let $y := topDown(Mp, S, Qt, $z)``) and continues
  with the plain remainder — always correct, and still touching only
  the subtree the user query actually needs.

The composed query never copies the document and never transforms
subtrees the user query does not visit; the Fig. 15 benchmarks measure
exactly this advantage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.automata.selecting import SelectingNFA, build_selecting_nfa
from repro.compose import walk as walklib
from repro.transform.query import TransformQuery
from repro.updates.ops import Delete, Insert, Rename, Replace
from repro.xmltree.node import Element
from repro.xpath.ast import (
    AndQual,
    CmpQual,
    LabelQual,
    NotQual,
    OrQual,
    Path,
    PathQual,
    Qual,
    Step,
    TrueQual,
)
from repro.xpath.normalize import (
    BETA_LABEL,
    NormStep,
    UnsupportedPathError,
    normalize_steps,
)
from repro.xquery.ast import (
    BoolAnd,
    BoolConst,
    BoolExpr,
    BoolNot,
    BoolOr,
    Compare,
    Conditional,
    ConstTree,
    ElementTemplate,
    EmptySeq,
    Exists,
    Expr,
    For,
    Let,
    Literal,
    PathFrom,
    QualCheck,
    Sequence,
    TransformedSubtree,
    UserQuery,
    VarRef,
)
from repro.xquery.evaluator import evaluate_query

#: Upper bound on simultaneous qualifier-bearing states per step before
#: the composer falls back (2 qualifiers → 4 branches).
MAX_BRANCH_QUALIFIERS = 2


@dataclass
class _Ctx:
    """What the composer knows about the node bound to *var*."""

    var: Optional[str]          # None = the document root
    states: frozenset           # definite Mp states at the node (∅ = untouchable below)
    patched: bool = False       # insert selected this node (e appended)
    relabel: Optional[str] = None  # rename selected this node
    is_const: bool = False      # bound inside the update's constant element


class Composer:
    """Builds the composed query for one (user query, transform) pair."""

    def __init__(
        self,
        user_query: UserQuery,
        transform_query: TransformQuery,
        nfa: Optional[SelectingNFA] = None,
    ):
        self.query = user_query
        self.transform = transform_query
        self.update = transform_query.update
        # A prebuilt (cached) NFA carries its warm lazy-DFA tables into
        # every TransformedSubtree the composed plan splices in.
        self.nfa: SelectingNFA = nfa if nfa is not None else build_selecting_nfa(
            transform_query.path
        )
        self.user_ctx_qual, self.user_steps = normalize_steps(user_query.path)
        self._counter = 0

    # ------------------------------------------------------------------

    def compose(self) -> Expr:
        if not isinstance(self.user_ctx_qual, TrueQual):
            # A context qualifier on the user path would itself need
            # rewriting against the transformed root; take the safe
            # route: localized transform of the whole document.
            return self._full_fallback()
        initial = self.nfa.initial_states()
        root_ctx = _Ctx(var=None, states=initial)
        if not isinstance(self.nfa.context_qual, TrueQual):
            # Mp has a context qualifier: decide it at runtime on the
            # (original) root, with the automaton armed or disarmed.
            root_var = self._fresh()
            return Let(
                root_var,
                PathFrom(None, Path()),
                Conditional(
                    QualCheck(root_var, self.nfa.context_qual),
                    self._loop(0, _Ctx(var=root_var, states=initial)),
                    self._loop(0, _Ctx(var=root_var, states=frozenset())),
                ),
            )
        return self._loop(0, root_ctx)

    # ------------------------------------------------------------------
    # The for-cascade
    # ------------------------------------------------------------------

    def _fresh(self) -> str:
        self._counter += 1
        return f"y{self._counter}"

    def _loop(self, index: int, ctx: _Ctx) -> Expr:
        """Rewrite user steps ``index…`` with the automaton at *ctx*."""
        if ctx.states and not walklib.final_reachable(self.nfa, ctx.states):
            # No final state reachable at all: nothing below ctx can be
            # touched — continue as if the automaton were disarmed.
            ctx = _Ctx(ctx.var, frozenset(), ctx.patched, ctx.relabel, ctx.is_const)
        if index == len(self.user_steps):
            return self._tail(ctx)
        if ctx.is_const or not ctx.states:
            return self._plain_rest(index, ctx)
        step = self.user_steps[index]
        if step.beta != BETA_LABEL:
            return self._fallback_rest(index, ctx)
        if self._could_select_other(ctx.states, step.name):
            # rename/replace could turn a non-matching sibling *into* a
            # match for this letter: only a real transform can tell.
            return self._fallback_rest(index, ctx)
        letter = step.name
        entered = self._advance_preclose(ctx.states, letter)
        cond_states = sorted(
            sid for sid in entered if self.nfa.states[sid].has_qualifier
        )
        if len(cond_states) > MAX_BRANCH_QUALIFIERS:
            return self._fallback_rest(index, ctx)
        unconditional = frozenset(sid for sid in entered if sid not in cond_states)
        loop_var = self._fresh()
        body = self._branch(index, step, loop_var, unconditional, cond_states, [])
        main_loop = For(loop_var, PathFrom(ctx.var, _label_path(letter)), body)
        if ctx.patched and isinstance(self.update, Insert) \
                and self.update.content.label == letter:
            # The element inserted into the parent is its last child and
            # matches this letter: iterate it too, plainly (it is not
            # part of the original document).
            const_var = self._fresh()
            const_body = self._plain_rest(
                index + 1, _Ctx(const_var, frozenset(), is_const=True)
            )
            if not isinstance(step.qual, TrueQual):
                # The constant element must pass the user qualifier too
                # (evaluated plainly — updates never apply inside e).
                const_body = Conditional(
                    QualCheck(const_var, step.qual), const_body, EmptySeq()
                )
            const_loop = For(const_var, ConstTree(self.update.content), const_body)
            return Sequence([main_loop, const_loop])
        return main_loop

    def _branch(
        self,
        index: int,
        step: NormStep,
        var: str,
        alive: frozenset,
        pending: list,
        passed: list,
    ) -> Expr:
        """Expand runtime branches for the qualifier-bearing states."""
        if pending:
            sid = pending[0]
            qual = self.nfa.states[sid].qual
            return Conditional(
                QualCheck(var, qual),
                self._branch(index, step, var, alive, pending[1:], passed + [sid]),
                self._branch(index, step, var, alive, pending[1:], passed),
            )
        definite = self.nfa.epsilon_closure(alive | frozenset(passed))
        return self._entered(index, step, var, definite)

    def _entered(self, index: int, step: NormStep, var: str, states: frozenset) -> Expr:
        """One definite branch: apply update effects and user qualifier."""
        update = self.update
        selected = self.nfa.final_id in states
        patched = False
        relabel: Optional[str] = None
        if selected:
            if isinstance(update, Delete):
                return EmptySeq()
            if isinstance(update, Replace):
                if update.content.label != step.name:
                    return EmptySeq()  # the replacement no longer matches
                const_var = self._fresh()
                return Let(
                    const_var,
                    ConstTree(update.content),
                    self._with_user_qual(
                        index, step, _Ctx(const_var, frozenset(), is_const=True)
                    ),
                )
            if isinstance(update, Rename):
                if update.new_label != step.name:
                    return EmptySeq()  # renamed away from this letter
                relabel = update.new_label
            if isinstance(update, Insert):
                patched = True
        ctx = _Ctx(var, states, patched=patched, relabel=relabel)
        return self._with_user_qual(index, step, ctx)

    def _with_user_qual(self, index: int, step: NormStep, ctx: _Ctx) -> Expr:
        """Apply the user step's own qualifier (on the transformed tree)."""
        body = self._loop(index + 1, ctx)
        if isinstance(step.qual, TrueQual):
            return body
        rewritten = self._rewrite_qual(step.qual, ctx)
        if rewritten is None:
            # Evaluate the qualifier on the locally transformed node.
            transformed_var = self._fresh()
            return Let(
                transformed_var,
                self._transformed_subtree(ctx),
                Conditional(QualCheck(transformed_var, step.qual), body, EmptySeq()),
            )
        return Conditional(rewritten, body, EmptySeq())

    # ------------------------------------------------------------------
    # Tail: where conditions and the return template
    # ------------------------------------------------------------------

    def _tail(self, ctx: _Ctx) -> Expr:
        conditions: list = []
        for cond in self.query.conditions:
            rewritten = self._rewrite_condition(cond, ctx)
            conditions.append(rewritten)
        template = self._rewrite_value(self.query.template, ctx)
        body: Expr = template
        if conditions:
            merged: BoolExpr = conditions[0]
            for extra in conditions[1:]:
                merged = BoolAnd(merged, extra)
            body = Conditional(merged, body, EmptySeq())
        return body

    def _rewrite_condition(self, cond: BoolExpr, ctx: _Ctx) -> BoolExpr:
        if isinstance(cond, Compare):
            left = self._rewrite_operand(cond.left, ctx)
            right = self._rewrite_operand(cond.right, ctx)
            if isinstance(left, EmptySeq) or isinstance(right, EmptySeq):
                return BoolConst(False)  # existential comparison over ∅
            return Compare(left, cond.op, right)
        if isinstance(cond, Exists):
            operand = self._rewrite_operand(cond.expr, ctx)
            if isinstance(operand, EmptySeq):
                return BoolConst(False)
            return Exists(operand)
        if isinstance(cond, BoolNot):
            return BoolNot(self._rewrite_condition(cond.operand, ctx))
        if isinstance(cond, BoolAnd):
            return BoolAnd(
                self._rewrite_condition(cond.left, ctx),
                self._rewrite_condition(cond.right, ctx),
            )
        if isinstance(cond, BoolOr):
            return BoolOr(
                self._rewrite_condition(cond.left, ctx),
                self._rewrite_condition(cond.right, ctx),
            )
        raise TypeError(f"unexpected condition {cond!r}")

    def _rewrite_operand(self, operand: Expr, ctx: _Ctx) -> Expr:
        if isinstance(operand, Literal):
            return operand
        if isinstance(operand, VarRef):
            # The user's $x is the node bound at ctx.  As an operand it
            # atomizes to its own text, which no update changes, so the
            # re-rooted reference suffices.
            return PathFrom(ctx.var, Path())
        if isinstance(operand, PathFrom):
            return self._rewrite_value_path(operand.path, ctx)
        raise TypeError(f"unexpected operand {operand!r}")

    def _rewrite_value(self, expr: Expr, ctx: _Ctx) -> Expr:
        """Rewrite a return-clause expression."""
        if isinstance(expr, Literal):
            return expr
        if isinstance(expr, VarRef):
            plain = PathFrom(ctx.var, Path())
            if ctx.is_const or (not ctx.states and not ctx.patched and ctx.relabel is None):
                return plain
            if not walklib.final_reachable(self.nfa, ctx.states) \
                    and not ctx.patched and ctx.relabel is None:
                return plain
            return self._transformed_subtree(ctx)
        if isinstance(expr, PathFrom):
            return self._rewrite_returned_path(expr.path, ctx)
        if isinstance(expr, ElementTemplate):
            return ElementTemplate(
                expr.label,
                dict(expr.attrs),
                [self._rewrite_value(part, ctx) for part in expr.parts],
            )
        raise TypeError(f"unexpected return expression {expr!r}")

    def _rewrite_value_path(self, path: Path, ctx: _Ctx) -> Expr:
        """A path used for its *values* (where-clause operand)."""
        if ctx.is_const or not ctx.states:
            return PathFrom(ctx.var, path)
        outcome = self._classify(path, ctx)
        if outcome == walklib.UNCHANGED:
            return PathFrom(ctx.var, path)
        if outcome == walklib.EMPTY:
            return EmptySeq()
        transformed_var = self._fresh()
        return Let(
            transformed_var,
            self._transformed_subtree(ctx),
            PathFrom(transformed_var, path),
        )

    def _rewrite_returned_path(self, path: Path, ctx: _Ctx) -> Expr:
        """A path whose *nodes* are returned: their subtrees matter, so
        UNCHANGED additionally requires that no final state stays
        reachable below the result nodes."""
        if ctx.is_const or not ctx.states:
            return PathFrom(ctx.var, path)
        letters = walklib.word_letters(path)
        patched_extends = (
            ctx.patched
            and isinstance(self.update, Insert)
            and (letters is None
                 or walklib._content_matches(self.update.content, letters))
        )
        if letters is not None and not patched_extends:
            outcome = walklib.walk_word(self.nfa, ctx.states, letters, self.update)
            if outcome == walklib.EMPTY:
                return EmptySeq()
            if outcome == walklib.UNCHANGED and not self._subtree_reachable(
                ctx.states, letters
            ):
                return PathFrom(ctx.var, path)
        transformed_var = self._fresh()
        return Let(
            transformed_var,
            self._transformed_subtree(ctx),
            PathFrom(transformed_var, path),
        )

    # ------------------------------------------------------------------
    # Qualifier rewriting (boolean contexts)
    # ------------------------------------------------------------------

    def _rewrite_qual(self, qual: Qual, ctx: _Ctx) -> Optional[BoolExpr]:
        """Rewrite an X qualifier to hold on the *transformed* node.

        Returns None when only a localized transform can decide it.
        """
        if isinstance(qual, TrueQual):
            return BoolConst(True)
        if isinstance(qual, LabelQual):
            if ctx.relabel is not None:
                return BoolConst(ctx.relabel == qual.label)
            if isinstance(self.update, Rename):
                # The node's own selection is resolved, but only upstream
                # branches know it; stay conservative elsewhere.
                return QualCheck(ctx.var, qual)
            return QualCheck(ctx.var, qual)
        if isinstance(qual, AndQual):
            left = self._rewrite_qual(qual.left, ctx)
            right = self._rewrite_qual(qual.right, ctx)
            if left is None or right is None:
                return None
            return BoolAnd(left, right)
        if isinstance(qual, OrQual):
            left = self._rewrite_qual(qual.left, ctx)
            right = self._rewrite_qual(qual.right, ctx)
            if left is None or right is None:
                return None
            return BoolOr(left, right)
        if isinstance(qual, NotQual):
            inner = self._rewrite_qual(qual.operand, ctx)
            return None if inner is None else BoolNot(inner)
        if isinstance(qual, (PathQual, CmpQual)):
            outcome = self._classify(qual.path, ctx)
            if outcome == walklib.UNCHANGED:
                return QualCheck(ctx.var, qual)
            if outcome == walklib.EMPTY:
                return BoolConst(False)
            return None
        return None

    def _classify(self, path: Path, ctx: _Ctx) -> str:
        """UNCHANGED/EMPTY/UNKNOWN for a value path at *ctx*."""
        if ctx.patched and isinstance(self.update, Insert):
            # The appended constant may extend this path's matches.
            letters = walklib.word_letters(path)
            if letters is None or walklib._content_matches(self.update.content, letters):
                return walklib.UNKNOWN
        letters = walklib.word_letters(path)
        if letters is None:
            if not walklib.final_reachable(self.nfa, ctx.states):
                return walklib.UNCHANGED
            return walklib.UNKNOWN
        return walklib.walk_word(self.nfa, ctx.states, letters, self.update)

    def _subtree_reachable(self, states: frozenset, letters: list) -> bool:
        """After walking *letters*, can a final state still be reached
        (i.e. might the update touch the result nodes' subtrees)?"""
        current = {sid: True for sid in states}
        for letter in letters:
            current = walklib._advance_certain(self.nfa, current, letter)
        return walklib.final_reachable(self.nfa, frozenset(current))

    # ------------------------------------------------------------------
    # Automaton helpers
    # ------------------------------------------------------------------

    def _advance_preclose(self, states: frozenset, letter: str) -> frozenset:
        """Entered states before ε-closure (qualifiers checked on these)."""
        return frozenset(self.nfa.consume(states, letter))

    def _could_select_other(self, states: frozenset, letter: str) -> bool:
        """Could the update select a *sibling* not labeled ``letter`` and
        make it match ``letter`` (rename-into / replace-into)?"""
        update = self.update
        if isinstance(update, Rename):
            if update.new_label != letter:
                return False
        elif isinstance(update, Replace):
            if update.content.label != letter:
                return False
        else:
            return False
        for sid in states:
            state = self.nfa.states[sid]
            targets = list(state.out_consume)
            if state.test == "dos":
                targets.append(sid)  # self-loop consumes any label
            for target_id in targets:
                target = self.nfa.states[target_id]
                if not target.is_final:
                    continue
                if target.test == "label" and target.name == letter:
                    continue  # same-letter matches are handled in-branch
                return True
        return False

    # ------------------------------------------------------------------
    # Fallbacks and plain remainders
    # ------------------------------------------------------------------

    def _transformed_subtree(self, ctx: _Ctx) -> TransformedSubtree:
        return TransformedSubtree(
            var=ctx.var,
            states=ctx.states,
            patched=ctx.patched,
            relabel=ctx.relabel,
            nfa=self.nfa,
            update=self.update,
        )

    def _ensure_var(self, ctx: _Ctx):
        """Bind the document root to a variable when ctx has none.

        Returns ``(ctx', wrap)`` where ``wrap`` finalizes the expression.
        """
        if ctx.var is not None:
            return ctx, (lambda expr: expr)
        root_var = self._fresh()
        bound = _Ctx(root_var, ctx.states, ctx.patched, ctx.relabel, ctx.is_const)
        return bound, (lambda expr: Let(root_var, PathFrom(None, Path()), expr))

    def _fallback_rest(self, index: int, ctx: _Ctx) -> Expr:
        """Localized topDown on ctx's node, then the plain remainder."""
        ctx, wrap = self._ensure_var(ctx)
        transformed_var = self._fresh()
        return wrap(Let(
            transformed_var,
            self._transformed_subtree(ctx),
            self._plain_rest(index, _Ctx(transformed_var, frozenset())),
        ))

    def _full_fallback(self) -> Expr:
        """Transform the whole document locally, then run Q plainly.

        Still avoids the copy of untouched subtrees (topDown shares
        them), but gives up on pruning — only used for corner cases.
        """
        root_var = self._fresh()
        transformed_var = self._fresh()
        plain = self._plain_rest(0, _Ctx(transformed_var, frozenset()))
        if not isinstance(self.user_ctx_qual, TrueQual):
            # The user path's own context qualifier, on the transformed root.
            plain = Conditional(
                QualCheck(transformed_var, self.user_ctx_qual), plain, EmptySeq()
            )
        transform_then_query = Let(
            transformed_var,
            TransformedSubtree(
                var=root_var,
                states=self.nfa.initial_states(),
                nfa=self.nfa,
                update=self.update,
            ),
            plain,
        )
        if not isinstance(self.nfa.context_qual, TrueQual):
            # Mp's own context qualifier gates the whole update; when it
            # fails the transform is the identity.
            untouched = self._plain_rest(0, _Ctx(root_var, frozenset()))
            if not isinstance(self.user_ctx_qual, TrueQual):
                untouched = Conditional(
                    QualCheck(root_var, self.user_ctx_qual), untouched, EmptySeq()
                )
            transform_then_query = Conditional(
                QualCheck(root_var, self.nfa.context_qual),
                transform_then_query,
                untouched,
            )
        return Let(root_var, PathFrom(None, Path()), transform_then_query)

    def _plain_rest(self, index: int, ctx: _Ctx) -> Expr:
        """The remaining query with no rewriting (below ctx nothing can
        change, or ctx is already transformed)."""
        remaining = self.user_steps[index:]
        if not remaining:
            return self._tail(ctx)
        path = Path(tuple(_norm_to_step(step) for step in remaining))
        final_var = self._fresh()
        return For(final_var, PathFrom(ctx.var, path),
                   self._tail(_Ctx(final_var, frozenset(), is_const=ctx.is_const)))


def _label_path(letter: str) -> Path:
    return Path((Step("label", letter),))


def _norm_to_step(norm: NormStep) -> Step:
    quals = () if isinstance(norm.qual, TrueQual) else (norm.qual,)
    if norm.beta == BETA_LABEL:
        return Step("label", norm.name, quals)
    if norm.beta == "wildcard":
        return Step("wildcard", None, quals)
    return Step("dos", None, quals)


def compose(
    user_query: UserQuery,
    transform_query: TransformQuery,
    nfa: Optional[SelectingNFA] = None,
) -> Expr:
    """Compose ``Q`` with ``Qt`` into a single query over the original
    document: ``evaluate_composed(T, compose(Q, Qt)) == Q(Qt(T))``.

    *nfa*, when supplied, must be the selecting NFA of
    ``transform_query.path`` (typically the compiled cache's instance):
    the composed plan's localized ``topDown`` splices then run on its
    already-warm DFA tables.
    """
    return Composer(user_query, transform_query, nfa=nfa).compose()


def evaluate_composed(root: Element, composed: Expr) -> list:
    """Evaluate a composed query directly on the original document."""
    return evaluate_query(root, composed)
