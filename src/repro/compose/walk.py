"""Static analysis of path expressions against the selecting NFA.

The Compose Method treats the paths inside a user query as *words* and
executes the selecting NFA on them (Section 4).  For a path made of
concrete labels this run is exact: every document node reached by the
path has exactly this label word below the composition point, so the
NFA's state set along the walk tells us — at compile time — whether the
embedded update can touch the path's result:

* ``UNCHANGED`` — no final state is ever entered along the word (and,
  for inserts, inserted content cannot extend a match): the transformed
  document gives the same node set and the same comparison values, so
  the expression needs no rewriting at all.
* ``EMPTY`` — a final state is entered *unconditionally* at some step
  for a delete (or a rename away from the word's letters, or a replace
  whose replacement cannot re-match): every node the path would reach
  passes through a position that the update eliminates, so the
  expression is statically empty.  This is Example 4.3/Q2's reasoning.
* ``UNKNOWN`` — anything in between: the composer falls back to a
  localized ``topDown`` call.

Two helpers implement this: :func:`walk_word` (the exact run on
concrete-label words) and :func:`may_reach_final` (a may-analysis for
words containing wildcards/descendant steps, only ever used to prove
``UNCHANGED``).

Why only element steps matter: updates insert/delete/replace/rename
*elements*; no update changes attributes or immediate text, so an
expression's comparison values can only change via its node set.
"""

from __future__ import annotations

from typing import Optional

from repro.automata.core import TEST_DOS
from repro.automata.selecting import SelectingNFA
from repro.updates.ops import Delete, Insert, Rename, Replace, Update
from repro.xmltree.node import Element
from repro.xpath.ast import Path, Step
from repro.xpath.evaluator import evaluate

UNCHANGED = "unchanged"
EMPTY = "empty"
UNKNOWN = "unknown"


def word_letters(path: Path) -> Optional[list]:
    """The label word of *path*, or None if it is not a plain chain of
    unqualified, concrete-label element steps (a trailing attribute
    step is dropped: attributes are never touched by updates)."""
    steps = list(path.steps)
    if steps and steps[-1].kind == "attr":
        steps = steps[:-1]
    letters: list = []
    for step in steps:
        if step.kind != "label" or step.quals:
            return None
        letters.append(step.name)
    return letters


def _advance_certain(nfa: SelectingNFA, current: dict, letter: str) -> dict:
    """One exact transition on a certainty-tracking state set.

    ``current`` maps state id → certainty: True means the state is
    reached on *every* qualifier outcome, False means only when some
    qualifier holds.  Entering a qualifier-bearing state demotes
    certainty; ε-closure preserves it.
    """
    states = nfa.states
    nxt: dict = {}

    def merge(sid: int, cert: bool) -> None:
        nxt[sid] = nxt.get(sid, False) or cert

    for sid, cert in current.items():
        state = states[sid]
        if state.test == TEST_DOS:
            merge(sid, cert)  # self-loop; dos states carry no qualifier
        for target_id in state.out_consume:
            target = states[target_id]
            if target.enter_matches(letter):
                merge(target_id, cert and not target.has_qualifier)
    for sid in sorted(nxt):
        for target_id in states[sid].out_eps:
            merge(target_id, nxt[sid])
    return nxt


def _content_matches(content: Element, letters: list) -> bool:
    """Can the update's constant element extend a match for the
    remaining letters?  (The inserted/replacement element becomes a
    child of the matched node, so the first remaining letter applies
    to it directly.)"""
    if not letters:
        return False
    wrapper = Element("__wrapper__", {}, [content])
    steps = Path(tuple(Step("label", name) for name in letters))
    return bool(evaluate(wrapper, steps))


def walk_word(
    nfa: SelectingNFA, state_ids: frozenset, letters: list, update: Update
) -> str:
    """Classify a concrete-label path under the update (see module doc).

    *state_ids* are the (definite) automaton states at the path's
    context node; *letters* the word.
    """
    final_id = nfa.final_id
    current = {sid: True for sid in state_ids}
    hits: list = []  # (position, certainty)
    for position, letter in enumerate(letters):
        current = _advance_certain(nfa, current, letter)
        if final_id in current:
            hits.append((position, current[final_id]))
        if not current:
            break
    last = len(letters) - 1

    if isinstance(update, Insert):
        for position, _certainty in hits:
            if position == last:
                continue  # appending a child changes neither set nor text
            if _content_matches(update.content, letters[position + 1 :]):
                return UNKNOWN
        return UNCHANGED
    if isinstance(update, Delete):
        if any(cert for _, cert in hits):
            return EMPTY
        return UNKNOWN if hits else UNCHANGED
    if isinstance(update, Rename):
        if update.new_label in letters:
            return UNKNOWN  # renamed-into: new matches may appear
        if any(cert for _, cert in hits):
            return EMPTY  # renamed away from every path instance
        return UNKNOWN if hits else UNCHANGED
    if isinstance(update, Replace):
        certain = [p for p, cert in hits if cert]
        uncertain = [p for p, cert in hits if not cert]
        if uncertain:
            return UNKNOWN
        if not certain:
            # Replaced-into: e could re-match a letter only where a
            # match occurs, and no match occurs along this word.
            return UNCHANGED
        position = min(certain)
        if _content_matches(update.content, letters[position:]):
            return UNKNOWN  # the replacement itself re-matches the word
        return EMPTY
    return UNKNOWN  # pragma: no cover - update kinds are closed


def final_reachable(nfa: SelectingNFA, state_ids: frozenset) -> bool:
    """May-analysis: is the final state reachable *at all* from
    *state_ids* (over any labels, ignoring qualifiers)?

    When it is not, no node at or below the current position can be
    selected by the update, so every expression there is UNCHANGED —
    this is the coarse check that lets the composer disarm the
    automaton (and the paper's "βi is disjoint from Mp" case).
    """
    reachable = set(state_ids)
    frontier = list(state_ids)
    while frontier:
        sid = frontier.pop()
        state = nfa.states[sid]
        for target_id in state.out_consume + state.out_eps:
            if target_id not in reachable:
                reachable.add(target_id)
                frontier.append(target_id)
    return nfa.final_id in reachable
