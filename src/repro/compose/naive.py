"""The Naive Composition Method (Section 4).

The straightforward rewriting::

    let $d := Qt(T)  let $d' := Q($d)  return $d'

— evaluate the transform query in full (we use GENTOP, the fastest of
the on-top-of-engine evaluators, matching the experimental setup of
Section 7.2), then evaluate the user query over the result.
"""

from __future__ import annotations

from typing import Callable

from repro.transform.query import TransformQuery
from repro.transform.topdown import transform_topdown
from repro.xmltree.node import Element
from repro.xquery.ast import UserQuery
from repro.xquery.evaluator import evaluate_query


def naive_compose(
    root: Element,
    user_query: UserQuery,
    transform_query: TransformQuery,
    transform: Callable = transform_topdown,
) -> list:
    """Evaluate ``Q(Qt(T))`` by sequential evaluation."""
    transformed = transform(root, transform_query)
    return evaluate_query(transformed, user_query)
