"""Seeded, deterministic fault injection.

A *fault point* is a named call site (``fault_point("wal.append.pre_fsync")``)
threaded through the code paths whose failure behaviour we need to
prove: state-dir I/O, the wire protocol, the multiprocessing workers.
With no plan installed the call is a single global read and a ``None``
check — cheap enough to leave in the commit and serve hot paths
(``# hot-path`` lint clean).

A :class:`FaultPlan` arms specific points.  Each armed point fires in
one of two modes:

* ``fail`` — raise :class:`InjectedFault` (a ``ValueError`` with wire
  code ``"fault"``), exercising error paths in-process;
* ``crash`` — ``os._exit(86)``, simulating a hard kill (no atexit, no
  flush, no ``finally``) for subprocess crash-recovery tests.

Firing is deterministic: ``nth=N`` fires on exactly the Nth hit (once),
``probability=p`` draws from the plan's seeded RNG, and a bare spec
fires on every hit.  The plan also keeps an ordered log of *every*
fault-point name hit while it was installed, so tests can assert I/O
discipline ("the file fsync happened before the rename") without
monkeypatching.

Plans install process-globally via :func:`install` / :func:`uninstall`,
or — for spawned subprocesses — via the ``REPRO_FAULTS`` environment
variable, parsed at import time::

    REPRO_FAULTS="seed=7;wal.append.post_fsync:crash:nth=2;wire.response.pre_send:fail:p=0.5"

Clauses are ``;``-separated; each is ``point[:mode[:opt=val...]]`` with
mode ``fail`` (default) or ``crash`` and options ``nth=int``,
``p=float``, ``exit=int``.  A ``seed=N`` clause seeds the plan's RNG.
"""

from __future__ import annotations

import os
import random
import threading
from typing import Dict, List, Optional

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "current_plan",
    "fault_point",
    "install",
    "install_from_env",
    "parse_plan",
    "uninstall",
]

#: Process exit code used by crash-mode faults; chaos tests assert on it
#: to distinguish an injected kill from an ordinary failure.
CRASH_EXIT_CODE = 86


class InjectedFault(ValueError):
    """A fail-mode fault point fired.

    Subclasses ``ValueError`` so the CLI error boundary reports it and
    exits 2; the wire protocol maps it to error code ``"fault"``.
    """

    code = "fault"

    def __init__(self, point: str) -> None:
        super().__init__(f"injected fault at {point!r}")
        self.point = point


class FaultSpec:
    """How one armed fault point fires.

    ``nth`` is 1-based and exact: the spec fires on hit number ``nth``
    and never again.  ``probability`` draws from the plan's seeded RNG
    per hit.  With neither, the spec fires on every hit.
    """

    __slots__ = ("mode", "nth", "probability", "exit_code")

    def __init__(
        self,
        mode: str = "fail",
        nth: Optional[int] = None,
        probability: Optional[float] = None,
        exit_code: int = CRASH_EXIT_CODE,
    ) -> None:
        if mode not in ("fail", "crash"):
            raise ValueError(f"unknown fault mode {mode!r}")
        if nth is not None and nth < 1:
            raise ValueError(f"nth must be >= 1, got {nth}")
        self.mode = mode
        self.nth = nth
        self.probability = probability
        self.exit_code = exit_code


class FaultPlan:
    """A set of armed fault points plus the seeded RNG they share.

    Install with :func:`install`; every :func:`fault_point` call then
    funnels through :meth:`check`.  The ordered ``log`` of hit names
    (armed or not) lets tests assert call-site ordering.
    """

    def __init__(self, seed: int = 0) -> None:
        self._lock = threading.Lock()
        # guarded-by[_hits, log]: self._lock
        self._specs: Dict[str, FaultSpec] = {}
        self._hits: Dict[str, int] = {}
        self._rng = random.Random(seed)
        self.log: List[str] = []

    def add(
        self,
        point: str,
        mode: str = "fail",
        nth: Optional[int] = None,
        probability: Optional[float] = None,
        exit_code: int = CRASH_EXIT_CODE,
    ) -> "FaultPlan":
        """Arm ``point``; returns ``self`` so plans chain."""
        self._specs[point] = FaultSpec(mode, nth, probability, exit_code)
        return self

    def hits(self, point: str) -> int:
        """How many times ``point`` was hit while this plan was live."""
        with self._lock:
            return self._hits.get(point, 0)

    def check(self, point: str) -> None:
        """Record a hit at ``point`` and fire its spec if armed.

        Called from :func:`fault_point` only.  The crash exit happens
        outside the lock (the process is dying; holding it would only
        matter to other threads that are about to die too, but the
        write to stderr should not be serialized away).
        """
        with self._lock:
            self.log.append(point)
            spec = self._specs.get(point)
            if spec is None:
                return
            count = self._hits.get(point, 0) + 1
            self._hits[point] = count
            if spec.nth is not None:
                fire = count == spec.nth
            elif spec.probability is not None:
                fire = self._rng.random() < spec.probability
            else:
                fire = True
        if not fire:
            return
        if spec.mode == "crash":
            os.write(2, b"repro.faults: crashing at " + point.encode() + b"\n")
            os._exit(spec.exit_code)
        raise InjectedFault(point)


#: The installed plan; ``None`` means every fault point is a no-op.
#: unguarded[_plan]: swapped whole by install/uninstall; fault_point
#: reads it once into a local, so a racing swap is at worst one stale
#: no-op check — tests install the plan before exercising the code.
_plan: Optional[FaultPlan] = None


def fault_point(name: str) -> None:  # hot-path
    """Fire the installed plan at ``name``; no-op when none is armed."""
    plan = _plan
    if plan is None:
        return
    plan.check(name)


def install(plan: FaultPlan) -> None:
    """Make ``plan`` the process-global fault plan."""
    global _plan
    _plan = plan


def uninstall() -> Optional[FaultPlan]:
    """Remove the installed plan (if any) and return it."""
    global _plan
    plan = _plan
    _plan = None
    return plan


def current_plan() -> Optional[FaultPlan]:
    return _plan


def parse_plan(text: str) -> FaultPlan:
    """Parse the ``REPRO_FAULTS`` grammar into a plan.

    ``seed=N;point[:mode[:opt=val...]];...`` — see the module docstring.
    """
    seed = 0
    clauses = []
    for raw in text.split(";"):
        clause = raw.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            seed = int(clause[len("seed="):])
            continue
        clauses.append(clause)
    plan = FaultPlan(seed=seed)
    for clause in clauses:
        fields = clause.split(":")
        point = fields[0]
        mode = fields[1] if len(fields) > 1 and fields[1] else "fail"
        nth: Optional[int] = None
        probability: Optional[float] = None
        exit_code = CRASH_EXIT_CODE
        for opt in fields[2:]:
            if not opt:
                continue
            key, _, value = opt.partition("=")
            if key == "nth":
                nth = int(value)
            elif key == "p":
                probability = float(value)
            elif key == "exit":
                exit_code = int(value)
            else:
                raise ValueError(f"unknown fault option {opt!r} in {clause!r}")
        plan.add(point, mode, nth, probability, exit_code)
    return plan


def install_from_env(env_var: str = "REPRO_FAULTS") -> Optional[FaultPlan]:
    """Install a plan from ``env_var`` if set; returns it (or ``None``).

    Runs once at import so spawned subprocesses (workers, ``repro
    serve`` under the chaos harness) arm themselves before any fault
    point is reachable.
    """
    text = os.environ.get(env_var)
    if not text:
        return None
    plan = parse_plan(text)
    install(plan)
    return plan


install_from_env()
