"""repro — a reproduction of *Querying XML with Update Syntax*
(Fan, Cong, Bohannon; SIGMOD 2007).

Transform queries evaluate an XML update *hypothetically*: they return
the tree the update would produce, without touching the stored
document::

    from repro import parse, parse_transform_query, transform_topdown, serialize

    doc = parse("<db><part><price>12</price></part></db>")
    qt = parse_transform_query(
        'transform copy $a := doc("db") modify do delete $a//price return $a'
    )
    view = transform_topdown(doc, qt)
    assert "price" not in serialize(view)
    assert "price" in serialize(doc)        # the source is untouched

Five evaluation strategies (all semantically identical), the
automaton machinery they are built on, and the Compose Method for
fusing user queries with transform queries are exported here; each
subpackage's docstring maps back to the paper's sections.
"""

__version__ = "1.0.0"

# XML substrate
from repro.xmltree import (
    Element,
    Text,
    deep_copy,
    deep_equal,
    element,
    parse,
    parse_file,
    serialize,
    text,
    write_file,
)

# XPath fragment X
from repro.xpath import evaluate, eval_qualifier, parse_xpath

# Automata
from repro.automata import build_filtering_nfa, build_selecting_nfa

# Updates
from repro.updates import apply_update, parse_update

# Transform queries and evaluation algorithms
from repro.transform import (
    TransformQuery,
    parse_transform_query,
    transform_copy_update,
    transform_naive,
    transform_sax,
    transform_sax_events,
    transform_sax_file,
    transform_topdown,
    transform_twopass,
)

# XQuery subset and composition
from repro.xquery import evaluate_query, parse_user_query
from repro.compose import compose, evaluate_composed, naive_compose

# Streaming extension (the paper's future-work item 3)
from repro.streaming import (
    stream_compose,
    stream_compose_file,
    stream_select,
    stream_select_file,
)

# The resident view store (documents, stacked views, commit/rollback)
from repro.store import (
    CompiledCache,
    DocumentStore,
    MaterializationPolicy,
    StoreError,
    UpdateLog,
    ViewRegistry,
    ViewStore,
)

# Workload generator
from repro.xmark import generate as generate_xmark
from repro.xmark import write_xmark_file

__all__ = [
    "CompiledCache",
    "DocumentStore",
    "Element",
    "MaterializationPolicy",
    "StoreError",
    "Text",
    "TransformQuery",
    "UpdateLog",
    "ViewRegistry",
    "ViewStore",
    "apply_update",
    "build_filtering_nfa",
    "build_selecting_nfa",
    "compose",
    "deep_copy",
    "deep_equal",
    "element",
    "eval_qualifier",
    "evaluate",
    "evaluate_composed",
    "evaluate_query",
    "generate_xmark",
    "naive_compose",
    "parse",
    "parse_file",
    "parse_transform_query",
    "parse_update",
    "parse_user_query",
    "parse_xpath",
    "serialize",
    "stream_compose",
    "stream_compose_file",
    "stream_select",
    "stream_select_file",
    "text",
    "transform_copy_update",
    "transform_naive",
    "transform_sax",
    "transform_sax_events",
    "transform_sax_file",
    "transform_topdown",
    "transform_twopass",
    "write_file",
    "write_xmark_file",
]
