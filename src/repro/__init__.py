"""repro — a reproduction of *Querying XML with Update Syntax*
(Fan, Cong, Bohannon; SIGMOD 2007).

Transform queries evaluate an XML update *hypothetically*: they return
the tree the update would produce, without touching the stored
document.  The front door is the prepared-statement :class:`Engine`:
parse and compile once, let the cost-based planner pick the evaluation
strategy per input, execute many times::

    from repro import Engine, parse, serialize

    engine = Engine()
    doc = parse("<db><part><price>12</price></part></db>")
    strip = engine.prepare_transform(
        'transform copy $a := doc("db") modify do delete $a//price return $a'
    )
    view = strip.run(doc)                   # planner-chosen strategy
    assert "price" not in serialize(view)
    assert "price" in serialize(doc)        # the source is untouched
    print(strip.explain(doc))               # the plan and its cost table

The five evaluation strategies (all semantically identical), the
automaton machinery they are built on, and the Compose Method for
fusing user queries with transform queries remain exported as flat
functions — thin, stable entry points over the same machinery the
engine plans across; each subpackage's docstring maps back to the
paper's sections.
"""

__version__ = "1.6.0"

# XML substrate
from repro.xmltree import (
    Element,
    FrozenDocument,
    Text,
    deep_copy,
    deep_equal,
    element,
    freeze,
    parse,
    parse_file,
    parse_file_to_arena,
    parse_to_arena,
    serialize,
    serialize_arena,
    text,
    thaw,
    write_file,
)

# XPath fragment X
from repro.xpath import evaluate, eval_qualifier, parse_xpath

# Automata
from repro.automata import build_filtering_nfa, build_selecting_nfa

# Updates
from repro.updates import apply_update, parse_update

# Transform queries and evaluation algorithms
from repro.transform import (
    TransformQuery,
    parse_transform_query,
    transform_copy_update,
    transform_naive,
    transform_sax,
    transform_sax_events,
    transform_sax_file,
    transform_topdown,
    transform_twopass,
)

# XQuery subset and composition
from repro.xquery import evaluate_query, parse_user_query
from repro.xquery.arena_eval import evaluate_query_arena
from repro.compose import compose, evaluate_composed, naive_compose

# Streaming extension (the paper's future-work item 3)
from repro.streaming import (
    stream_compose,
    stream_compose_file,
    stream_select,
    stream_select_file,
)

# The resident view store (documents, stacked views, commit/rollback)
from repro.store import (
    CompiledCache,
    DocumentStore,
    MaterializationPolicy,
    StoreError,
    UpdateLog,
    ViewRegistry,
    ViewStore,
)

# Telemetry: the metrics registry and query-lifecycle tracing
from repro.obs import MetricsRegistry, Tracer

# The concurrent query service (MVCC snapshot reads, batching, TCP)
from repro.service import (
    Client,
    QueryService,
    ServiceConfig,
    ServiceError,
    ServiceServer,
)

# The prepared-statement engine and its cost-based planner
from repro.engine import (
    Engine,
    Plan,
    Planner,
    PreparedComposed,
    PreparedQuery,
    PreparedStack,
    PreparedTransform,
    default_engine,
)

# Workload generator
from repro.xmark import generate as generate_xmark
from repro.xmark import write_xmark_file


def prepare_transform(text):
    """Prepare a transform query on the process-wide default engine."""
    return default_engine().prepare_transform(text)


def prepare_query(text):
    """Prepare a FLWR user query on the process-wide default engine."""
    return default_engine().prepare_query(text)


def prepare_composed(user, transform):
    """Prepare a composed (user ∘ transform) plan on the default engine."""
    return default_engine().prepare_composed(user, transform)


__all__ = [
    "Client",
    "CompiledCache",
    "DocumentStore",
    "Element",
    "Engine",
    "FrozenDocument",
    "Plan",
    "Planner",
    "PreparedComposed",
    "PreparedQuery",
    "PreparedStack",
    "PreparedTransform",
    "default_engine",
    "prepare_composed",
    "prepare_query",
    "prepare_transform",
    "MaterializationPolicy",
    "MetricsRegistry",
    "QueryService",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "StoreError",
    "Text",
    "Tracer",
    "TransformQuery",
    "UpdateLog",
    "ViewRegistry",
    "ViewStore",
    "apply_update",
    "build_filtering_nfa",
    "build_selecting_nfa",
    "compose",
    "deep_copy",
    "deep_equal",
    "element",
    "eval_qualifier",
    "evaluate",
    "evaluate_composed",
    "evaluate_query",
    "evaluate_query_arena",
    "freeze",
    "generate_xmark",
    "naive_compose",
    "parse",
    "parse_file",
    "parse_file_to_arena",
    "parse_to_arena",
    "parse_transform_query",
    "parse_update",
    "parse_user_query",
    "parse_xpath",
    "serialize",
    "serialize_arena",
    "stream_compose",
    "stream_compose_file",
    "stream_select",
    "stream_select_file",
    "text",
    "thaw",
    "transform_copy_update",
    "transform_naive",
    "transform_sax",
    "transform_sax_events",
    "transform_sax_file",
    "transform_topdown",
    "transform_twopass",
    "write_file",
    "write_xmark_file",
]
