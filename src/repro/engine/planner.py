"""The cost-based strategy planner.

One transform query admits many evaluation strategies with wildly
different costs (the paper's Figures 12-14); the planner picks one from
the query's *shape* and the input's *size* instead of making the caller
choose.  The cost model is a handful of per-node unit costs, calibrated
against this repository's own Fig-12 benchmark run:

* ``topdown`` (GENTOP) prunes by the selecting NFA — the cheapest
  single pass, but its *native* qualifier evaluation walks a
  candidate's subtree for every descendant qualifier, which goes
  quadratic when candidates are dense.
* ``twopass`` (TD-BU) pays two full linear passes plus a per-qualifier
  annotation cost, in exchange for O(1) qualifier checks: it wins
  exactly when descendant qualifiers meet many candidates.
* ``naive`` and ``copy`` are the paper's baselines (linear membership
  scan / full snapshot) — modeled so ``explain()`` can show *why* they
  lose, and they are never chosen on merit.
* ``sax`` over a resident tree pays event synthesis on top of two
  passes; ``stream`` (the file-to-file SAX path) is chosen for file
  inputs too large to parse comfortably, where bounded memory beats
  raw speed.

Every estimate the model consumed is surfaced by :meth:`Plan.describe`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.engine.executor import (
    PAPER_NAMES,
    TREE_STRATEGIES,
    run_tree_strategy,
)
from repro.engine.features import (
    PROFILE_CAP,
    InputProfile,
    QueryFeatures,
    analyze_transform,
    profile_input,
)
from repro.lru import LRUCache
from repro.obs import current_profile, span
from repro.transform.query import TransformQuery
from repro.xmltree.node import Element

#: Files at or above this size stream file-to-file (bounded memory)
#: instead of being parsed into a resident tree first.
DEFAULT_STREAM_THRESHOLD = 8 * 1024 * 1024

#: Recalibrated per-node unit costs of the read (select/query) path,
#: measured on this repository's Fig-12 run at 10 MB XMark: the Node
#: walk pays Python object traversal plus the oracle's dedup and
#: document-order passes; the arena scan runs the same lazy DFA over
#: the int columns of a frozen snapshot in one pre-order loop.
READ_COST_NODE = 0.9
READ_COST_ARENA = 0.17


@dataclass(frozen=True)
class Plan:
    """The planner's decision for one (query, input) pair."""

    strategy: str                      #: chosen strategy name
    costs: dict = field(default_factory=dict)  #: strategy → estimated cost
    features: Optional[QueryFeatures] = None
    profile: Optional[InputProfile] = None
    reasons: tuple = ()                #: human-readable justification
    backend: str = "node"              #: data representation: node | arena

    @property
    def cost(self) -> float:
        found = self.costs.get(self.counter_key)
        if found is None:
            found = self.costs.get(self.strategy, 0.0)
        return found

    @property
    def paper_name(self) -> str:
        return PAPER_NAMES.get(self.strategy, self.strategy)

    @property
    def counter_key(self) -> str:
        """The execution-counter key: strategy, tagged with the backend
        when it is not the default node tree."""
        if self.backend == "node":
            return self.strategy
        return f"{self.strategy}[{self.backend}]"

    def describe(self) -> str:
        lines = [f"strategy: {self.strategy} ({self.paper_name})"]
        lines.append(
            "backend: arena (columnar, zero-copy snapshot)"
            if self.backend == "arena"
            else "backend: node (object tree)"
        )
        if self.profile is not None:
            lines.append(f"input: {self.profile.summary()}")
        if self.features is not None:
            lines.append(f"query: {self.features.summary()}")
        if self.costs:
            lines.append("estimated costs [node-visit units]:")
            chosen = self.counter_key
            for name, cost in sorted(self.costs.items(), key=lambda kv: kv[1]):
                marker = "  <== chosen" if name == chosen else ""
                lines.append(f"  {name:<11} {cost:>12.0f}{marker}")
        for reason in self.reasons:
            lines.append(f"because: {reason}")
        return "\n".join(lines)


class Planner:
    """Chooses an evaluation strategy from query shape and input form.

    Stateless apart from bookkeeping: :attr:`counters` tallies plans
    made *for execution* (introspective calls like ``explain()`` pass
    ``record=False``; memoized re-runs are not re-counted) and
    :attr:`last_plan` keeps the most recent decision either way, both
    for tests and ``stats()`` introspection.
    """

    def __init__(
        self,
        stream_threshold: int = DEFAULT_STREAM_THRESHOLD,
        profile_cap: int = PROFILE_CAP,
    ):
        self.stream_threshold = stream_threshold
        self.profile_cap = profile_cap
        self.counters: dict[str, int] = {}
        self.last_plan: Optional[Plan] = None
        self._lock = threading.Lock()
        self._features = LRUCache(1024)
        # Cumulative estimate-vs-actual drift per strategy[backend]
        # (runs profiled, estimated node visits, measured visits),
        # mutated under self._lock like the counters.
        self._drift: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def plan(
        self,
        query: TransformQuery,
        doc_or_path: Union[Element, str],
        features: Optional[QueryFeatures] = None,
        record: bool = True,
    ) -> Plan:
        """Plan *query* against a resident tree or a file path.

        ``record=False`` marks an introspective call (``explain()``):
        the decision is made identically but not tallied in
        :attr:`counters`.
        """
        profile = profile_input(doc_or_path, self.profile_cap)
        return self.plan_for_profile(query, profile, features, record=record)

    def plan_for_profile(
        self,
        query: TransformQuery,
        profile: InputProfile,
        features: Optional[QueryFeatures] = None,
        record: bool = True,
    ) -> Plan:
        if features is None:
            features = self._features_for(query)
        with span("plan"):
            plan = self._choose(features, profile)
        active = current_profile()
        if active is not None:
            active.set_plan(plan.strategy, plan.backend, plan.cost, profile.nodes)
        if record:
            self.record(plan)
        else:
            with self._lock:
                self.last_plan = plan
        return plan

    def plan_read(
        self,
        doc_or_input,
        features: Optional[QueryFeatures] = None,
        record: bool = True,
    ) -> Plan:
        """Plan a read (select or user query): the backend dimension.

        Reads never build an output tree, so the only decision is the
        data representation: a :class:`~repro.xmltree.arena.
        FrozenDocument` input takes the columnar ``arena`` backend
        (the DFA scans int columns over pre-order ranges), anything
        else walks the Node tree.  Both backends' estimated costs are
        surfaced so ``explain()`` shows what freezing would buy.
        """
        with span("plan"):
            return self._plan_read(doc_or_input, features, record)

    def _plan_read(self, doc_or_input, features, record) -> Plan:
        profile = (
            doc_or_input
            if isinstance(doc_or_input, InputProfile)
            else profile_input(doc_or_input, self.profile_cap)
        )
        n = max(1, profile.nodes)
        # Keyed like counter_key so describe() marks the chosen backend
        # and Plan.cost resolves to the executed row.
        costs = {
            "scan": READ_COST_NODE * n,
            "scan[arena]": READ_COST_ARENA * n,
        }
        if profile.form == "arena":
            backend = "arena"
            reasons = (
                "a frozen columnar snapshot is available: the DFA scans "
                f"int columns over pre-order ranges "
                f"(~{READ_COST_NODE / READ_COST_ARENA:.1f}x cheaper per "
                "node than object traversal)",
            )
        else:
            backend = "node"
            reasons = (
                "no frozen arena for this input: the scan walks the "
                "object tree (freeze() the document — or read through a "
                "store snapshot — to take the columnar backend)",
            )
        plan = Plan("scan", costs, features, profile, reasons, backend=backend)
        active = current_profile()
        if active is not None:
            active.set_plan(plan.strategy, plan.backend, plan.cost, profile.nodes)
        if record:
            self.record(plan)
        else:
            with self._lock:
                self.last_plan = plan
        return plan

    def record(self, plan: Plan) -> None:
        """Tally *plan* as executed (callers that planned with
        ``record=False`` and then ran the plan report it here)."""
        key = plan.counter_key
        with self._lock:
            self.counters[key] = self.counters.get(key, 0) + 1
            self.last_plan = plan

    def observe_actual(self, profile) -> None:
        """Feed one finished execution :class:`~repro.obs.profile.
        Profile` into the cumulative estimate-vs-actual drift tally.

        Profiles that never reached the planner (no strategy) or never
        scanned (no visits) are skipped — they carry no comparison.
        """
        if not profile.strategy or not profile.est_nodes or profile.nodes_visited <= 0:
            return
        key = (
            f"{profile.strategy}.{profile.backend}"
            if profile.backend and profile.backend != "node"
            else profile.strategy
        )
        with self._lock:
            row = self._drift.setdefault(
                key, {"runs": 0, "est_nodes": 0, "actual_nodes": 0}
            )
            row["runs"] += 1
            row["est_nodes"] += profile.est_nodes
            row["actual_nodes"] += profile.nodes_visited

    def drift_stats(self) -> dict:
        """Cumulative plan-vs-actual drift per strategy key: total
        estimated and measured node visits plus their ratio (> 1 means
        the cost model underestimates the work; < 1, it overestimates
        — pruning usually pulls scans well under 1)."""
        with self._lock:
            rows = {key: dict(row) for key, row in self._drift.items()}
        for row in rows.values():
            if row["est_nodes"]:
                row["visit_ratio"] = round(
                    row["actual_nodes"] / float(row["est_nodes"]), 4
                )
        return rows

    def transform(
        self,
        root: Element,
        query: TransformQuery,
        selecting=None,
        filtering=None,
        filtering_factory: Optional[Callable] = None,
    ) -> Element:
        """Plan and evaluate in one call (the store's entry point).

        Returns the transformed tree; the decision is observable via
        :attr:`last_plan` / :attr:`counters`.
        """
        plan = self.plan(query, root)
        strategy = plan.strategy if plan.strategy != "stream" else "sax"
        return run_tree_strategy(
            strategy,
            root,
            query,
            selecting=selecting,
            filtering=filtering,
            filtering_factory=filtering_factory,
        )

    def stats(self) -> dict:
        with self._lock:
            return {
                "chosen": dict(self.counters),
                "last": self.last_plan.strategy if self.last_plan else None,
            }

    def normalized_counters(self) -> dict:
        """The execution tallies under the ``layer.component.metric``
        naming scheme: the legacy ``scan[arena]``-style backend tags
        become dotted segments (``scan.arena``), so the registry's
        snapshot shows ``engine.planner.chosen.scan.arena`` next to
        ``store.arena.reads`` instead of two divergent spellings."""
        with self._lock:
            return {
                key.replace("[", ".").rstrip("]"): count
                for key, count in self.counters.items()
            }

    def bind_metrics(self, registry) -> None:
        """Expose the execution counters through a
        :class:`~repro.obs.registry.MetricsRegistry` (as a lazily
        sampled probe; the planning hot path is untouched)."""
        registry.probe("engine.planner.chosen", self.normalized_counters)
        registry.probe("engine.planner.drift", self.drift_stats)

    # ------------------------------------------------------------------
    # The cost model
    # ------------------------------------------------------------------

    def _features_for(self, query: TransformQuery) -> QueryFeatures:
        # Keyed structurally (kind + parsed Path): rendered path text is
        # lossy (float %g, quoted literals) and must never be a key.
        key = (query.update.kind, query.path)
        return self._features.get_or_compute(
            key, lambda: analyze_transform(query)
        )

    def _choose(self, f: QueryFeatures, profile: InputProfile) -> Plan:
        reasons: list[str] = []
        if profile.form == "file" and profile.size_bytes >= self.stream_threshold:
            # Memory, not time: twoPassSAX keeps memory bounded by
            # document depth regardless of file size (Fig. 14).
            reasons.append(
                f"file is {profile.size_bytes} bytes "
                f"(>= stream threshold {self.stream_threshold}); "
                "streaming keeps memory bounded by document depth "
                "(callers that require a full result tree still "
                "materialize the output)"
            )
            costs = self._tree_costs(f, profile)
            costs["stream"] = 3.0 * profile.nodes
            return Plan("stream", costs, f, profile, tuple(reasons))

        costs = self._tree_costs(f, profile)
        if profile.form == "file":
            reasons.append(
                "file fits below the stream threshold: parse once, "
                "then evaluate on the tree"
            )
        elif profile.form == "arena":
            reasons.append(
                "input is a frozen arena: tree strategies build their "
                "output from a thawed copy (transforms are the write "
                "path); run_to_file takes the arena-native serialize "
                "path instead"
            )
        best = min(
            (name for name in TREE_STRATEGIES if name in costs),
            key=lambda name: costs[name],
        )
        reasons.extend(self._reasons_for(best, f))
        return Plan(best, costs, f, profile, tuple(reasons))

    def _tree_costs(self, f: QueryFeatures, profile: InputProfile) -> dict:
        """Estimated cost per strategy, in node-visit units.

        Constants are calibrated against this repository's Fig-12 run
        (12k-node XMark tree) *on the compiled runtime*: the NFA-driven
        passes (GENTOP, TD-BU's topDown half, the SAX automaton work)
        step through the lazy DFA — interned state sets, memoized
        ``(set, symbol)`` transitions — which cut their per-node unit
        from ~0.9 to ~0.55.  Native qualifier checks run as closures
        compiled once from the ASTs (cheaper per candidate than the old
        interpretive dispatch), but a descendant qualifier still walks
        the candidate's subtree — whose mean size is the tree's mean
        node depth, the term that makes GENTOP quadratic on deep
        documents.  ``QualDP``'s annotation pass and the baselines
        (naive's membership scan, copy's snapshot) are not DFA-driven
        and keep their seed constants.
        """
        n = max(1, profile.nodes)
        # Structural candidates: nodes the NFA reports as matches of the
        # path skeleton, before qualifiers filter them.
        candidates = max(1.0, f.selectivity * n)
        # Matches after qualifiers (each qualifier keeps ~40%).
        matches = max(1.0, candidates * (0.4 ** min(f.quals, 4)))
        # topDown visits the whole tree once a descendant gap appears;
        # a child-only path touches just its prefix levels.
        touched = 1.0 if f.has_descendant else min(1.0, 0.12 + 0.1 * f.steps)

        qual_native = 0.0
        if f.quals:
            per_candidate = 0.1 + 0.09 * max(1, f.qual_steps)
            if f.qual_dos:
                # The subtree walk: mean subtree size ≈ mean node depth.
                # Measured on deep chains, the compiled walk reaches
                # cost parity with the annotation pass at mean depth
                # ~17 and loses quadratically beyond it.
                per_candidate += 0.05 * profile.avg_depth * f.qual_dos
            qual_native = candidates * per_candidate

        topdown = 0.55 * touched * n + qual_native
        if f.quals == 0:
            # twopass delegates to topdown when there is nothing to
            # annotate; a hair more for the delegation check.
            twopass = topdown + 1.0
        else:
            # The annotation pass folds QualDP vectors per node (not
            # DFA work); only its NFA stepping got cheaper.
            twopass = 0.55 * touched * n + n * (0.15 + 0.8 * f.quals)
        return {
            "topdown": topdown,
            "twopass": twopass,
            # naive and copy both evaluate the embedded path with the
            # same native qualifier checks topdown pays (naive for its
            # $xp node list, copy inside apply_update), so they inherit
            # qual_native on top of their rebuild/snapshot costs.  Only
            # the annotation-based strategies (twopass, sax) escape it.
            "naive": 2.2 * n + 0.002 * n * matches + qual_native,
            "copy": 3.2 * n + qual_native,
            # Event synthesis dominates sax-over-a-tree; its automaton
            # half rides the same DFA tables.
            "sax": 3.8 * n,
        }

    def _reasons_for(self, strategy: str, f: QueryFeatures) -> list[str]:
        if strategy == "twopass":
            return [
                "descendant qualifiers meet many candidates: annotating "
                "every qualifier once (bottomUp) beats re-walking each "
                "candidate's subtree natively"
            ]
        if strategy == "topdown":
            if f.quals == 0:
                return [
                    "no qualifiers: a single NFA-pruned pass is optimal "
                    "(twopass would delegate here anyway)"
                ]
            return [
                "qualifiers are cheap to check natively at the few "
                "candidate nodes; a second full pass would cost more"
            ]
        return [f"{strategy} estimated cheapest for this shape"]
