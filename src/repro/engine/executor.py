"""Strategy execution: one uniform entry point over the five evaluation
algorithms, threading prebuilt automata through to the ones that take
them.

The planner names strategies; this module runs them.  Keeping the
dispatch table here (rather than in the planner) means the store, the
prepared objects and the CLI all execute a plan the same way, and a
strategy added to the table is immediately plannable everywhere.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.automata.filtering import FilteringNFA
from repro.automata.selecting import SelectingNFA
from repro.obs import current_profile
from repro.transform.copy_update import transform_copy_update
from repro.transform.naive import transform_naive
from repro.transform.query import TransformQuery
from repro.transform.sax_twopass import transform_sax_events
from repro.transform.topdown import transform_topdown
from repro.transform.twopass import transform_twopass
from repro.xmltree.node import Element
from repro.xmltree.sax import SAXEvent, events_to_tree, tree_to_events

#: Strategy names understood by the executor (and produced by the
#: planner).  "stream" is the file-to-file SAX path; on a resident tree
#: it degrades to "sax" over synthesized events.
TREE_STRATEGIES = ("topdown", "twopass", "naive", "copy", "sax")
ALL_STRATEGIES = TREE_STRATEGIES + ("stream",)

#: The paper's names for each strategy (Fig. 12 legend); "scan" is the
#: read path (select/query), which has a backend dimension instead of
#: a strategy choice — see Planner.plan_read.
PAPER_NAMES = {
    "topdown": "GENTOP",
    "twopass": "TD-BU",
    "naive": "NAIVE",
    "copy": "GalaXUpdate",
    "sax": "twoPassSAX",
    "stream": "twoPassSAX (streaming)",
    "scan": "NFA document scan",
}


def run_tree_strategy(
    strategy: str,
    root: Element,
    query: TransformQuery,
    selecting: Optional[SelectingNFA] = None,
    filtering: Optional[FilteringNFA] = None,
    filtering_factory: Optional[Callable[[], FilteringNFA]] = None,
) -> Element:
    """Evaluate *query* on a resident tree with the named strategy.

    Prebuilt automata are used when given; *filtering_factory* lets a
    caller with a compiled-artifact cache defer the filtering NFA to
    the strategies that actually need one (twopass, sax).

    A :class:`~repro.xmltree.arena.FrozenDocument` is accepted for
    *root*: transforms build a fresh output tree, so the arena (which
    cannot share Node structure) is thawed once up front — the
    zero-copy read paths live in ``Planner.plan_read`` consumers, not
    here.  Callers producing *text* output should prefer the
    arena-native ``run_to_file`` fast path.
    """
    if not isinstance(root, Element):
        from repro.xmltree.arena import FrozenDocument, thaw

        if isinstance(root, FrozenDocument):
            root = thaw(root)
    profile = current_profile()
    if profile is not None:
        # Tree strategies all realize at least one full traversal of
        # the input; the measured walk below *is* that visit count
        # (prune-level detail is only measurable on the arena backend,
        # where the DFA loop counts itself — see arena_run).
        profile.add_scan(nodes=_count_nodes(root))
    if strategy == "topdown":
        return transform_topdown(root, query, nfa=selecting)
    if strategy == "twopass":
        if filtering is None and filtering_factory is not None:
            filtering = filtering_factory()
        return transform_twopass(
            root, query, selecting=selecting, filtering=filtering
        )
    if strategy == "naive":
        return transform_naive(root, query)
    if strategy == "copy":
        return transform_copy_update(root, query)
    if strategy in ("sax", "stream"):
        if filtering is None and filtering_factory is not None:
            filtering = filtering_factory()

        def source() -> Iterable[SAXEvent]:
            return tree_to_events(root)

        return events_to_tree(
            transform_sax_events(source, query, selecting, filtering)
        )
    raise ValueError(f"unknown strategy {strategy!r}")


def _count_nodes(root: Element) -> int:
    """Node count of a resident tree (iterative; profiling only, so the
    walk is paid exclusively by explain_analyze-style runs).  Counts
    like ``estimate_nodes``: elements and their text children both."""
    count = 0
    stack: list = [root]
    pop = stack.pop
    push = stack.extend
    while stack:
        node = pop()
        count += 1
        if node.is_element:
            push(node.children)
    return count
