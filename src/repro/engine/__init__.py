"""``repro.engine`` — the prepared-statement query engine.

The rest of the package exposes evaluation *mechanisms* (five transform
strategies, the Compose Method, a streaming path); this subpackage is
the *engine* that owns them: a facade that parses and compiles a query
exactly once, a cost-based planner that picks the strategy per input,
and prepared objects that execute many times::

    from repro import Engine

    engine = Engine()
    strip = engine.prepare_transform(
        'transform copy $a := doc("db") modify do delete $a//price return $a'
    )
    view = strip.run(doc)                  # plans, then executes
    print(strip.explain(doc))              # the plan, with its cost table
    redact = strip.then(engine.prepare_transform(
        'transform copy $a := doc("db") modify do rename $a//sname as vendor return $a'
    ))
    view2 = redact.run(doc)                # stacked transforms, per-stage plans

Layering: ``features`` summarizes query and input shape, ``planner``
turns the summaries into a :class:`Plan`, ``executor`` runs a named
strategy with prebuilt automata, ``prepared`` wraps all of it behind
run/run_many/then/explain, and ``engine`` is the caching facade.  The
view store (:mod:`repro.store`) plugs the same planner into its view
materialization and staged-update previews.
"""

from repro.engine.engine import Engine, default_engine
from repro.engine.executor import (
    ALL_STRATEGIES,
    PAPER_NAMES,
    TREE_STRATEGIES,
    run_tree_strategy,
)
from repro.engine.features import (
    InputProfile,
    QueryFeatures,
    analyze_transform,
    profile_input,
)
from repro.engine.planner import Plan, Planner
from repro.engine.prepared import (
    PreparedComposed,
    PreparedQuery,
    PreparedStack,
    PreparedTransform,
)

__all__ = [
    "ALL_STRATEGIES",
    "Engine",
    "InputProfile",
    "PAPER_NAMES",
    "Plan",
    "Planner",
    "PreparedComposed",
    "PreparedQuery",
    "PreparedStack",
    "PreparedTransform",
    "QueryFeatures",
    "TREE_STRATEGIES",
    "analyze_transform",
    "default_engine",
    "profile_input",
    "run_tree_strategy",
]
