"""Query-shape and input-shape analysis for the strategy planner.

The planner's inputs are deliberately cheap summaries:

* :class:`QueryFeatures` — static shape of a transform query's embedded
  ``X`` expression: step counts by kind, qualifier counts (including
  descendant steps *inside* qualifier paths, which is what makes the
  native per-candidate qualifier evaluation of ``topDown`` expensive),
  and a crude structural selectivity estimate.  Computed once per
  prepared query.
* :class:`InputProfile` — what the input looks like *right now*: a
  resident tree (node count, estimated by a capped walk so profiling a
  huge tree costs O(cap), not O(n)) or a file on disk (byte size; node
  count extrapolated).  Computed per :meth:`Prepared.run` call.

Both are plain data; every number the cost model consumes is visible in
``explain()`` output.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Union

from repro.transform.query import TransformQuery
from repro.xmltree.node import Element
from repro.xpath.ast import (
    AndQual,
    CmpQual,
    NotQual,
    OrQual,
    Path,
    PathQual,
    Qual,
)

#: Stop the profiling walk after this many nodes: beyond it, every
#: strategy choice is the same, so an exact count is wasted work.
PROFILE_CAP = 2048

#: Rough bytes-per-node of serialized XML (XMark averages ~45), used to
#: extrapolate a node count from a file size without parsing.
BYTES_PER_NODE = 45


# ----------------------------------------------------------------------
# Query shape
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class QueryFeatures:
    """Static shape summary of one transform query."""

    kind: str            #: update kind: insert | delete | replace | rename
    path_text: str       #: the embedded X expression, rendered
    steps: int           #: location steps, descendant gaps excluded
    dos_steps: int       #: descendant (``//``) gaps in the main path
    label_steps: int     #: label tests in the main path
    wildcard_steps: int  #: ``*`` tests in the main path
    quals: int           #: qualifiers attached to main-path steps
    qual_steps: int      #: location steps inside qualifier paths (recursive)
    qual_dos: int        #: descendant gaps inside qualifier paths (recursive)
    selectivity: float   #: structural match-fraction estimate in (0, 1]

    @property
    def has_descendant(self) -> bool:
        return self.dos_steps > 0

    @property
    def has_descendant_qualifier(self) -> bool:
        return self.qual_dos > 0

    def summary(self) -> str:
        return (
            f"{self.kind}, {self.steps} step(s) "
            f"({self.dos_steps} descendant), {self.quals} qualifier(s) "
            f"({self.qual_dos} descendant)"
        )


#: Per-step selectivity factors for the structural estimate: a label
#: test matches a fraction of an element's children, a wildcard nearly
#: all of them, and a descendant gap widens rather than narrows.
_LABEL_SELECTIVITY = 0.25
_WILDCARD_SELECTIVITY = 0.9


def _walk_qual(qual: Qual) -> tuple[int, int, int]:
    """(qualifier count, steps inside, descendant gaps inside)."""
    if isinstance(qual, (AndQual, OrQual)):
        lq, ls, ld = _walk_qual(qual.left)
        rq, rs, rd = _walk_qual(qual.right)
        return lq + rq, ls + rs, ld + rd
    if isinstance(qual, NotQual):
        return _walk_qual(qual.operand)
    if isinstance(qual, (PathQual, CmpQual)):
        steps = dos = nested_q = 0
        for step in qual.path.steps:
            if step.kind == "dos":
                dos += 1
            else:
                steps += 1
            for nested in step.quals:
                nq, ns, nd = _walk_qual(nested)
                nested_q += nq
                steps += ns
                dos += nd
        return 1 + nested_q, steps, dos
    # LabelQual / TrueQual: a constant-time check.
    return 1, 0, 0


def analyze_path(path: Path) -> tuple[int, int, int, int, int, int, int, float]:
    steps = dos = labels = wildcards = quals = qual_steps = qual_dos = 0
    selectivity = 1.0
    for step in path.steps:
        if step.kind == "dos":
            dos += 1
        else:
            steps += 1
            if step.kind == "label":
                labels += 1
                selectivity *= _LABEL_SELECTIVITY
            elif step.kind == "wildcard":
                wildcards += 1
                selectivity *= _WILDCARD_SELECTIVITY
        for qual in step.quals:
            q, s, d = _walk_qual(qual)
            quals += q
            qual_steps += s
            qual_dos += d
    return steps, dos, labels, wildcards, quals, qual_steps, qual_dos, selectivity


def analyze_transform(query: TransformQuery) -> QueryFeatures:
    """Summarize the shape of a transform query's embedded path."""
    steps, dos, labels, wildcards, quals, qual_steps, qual_dos, sel = analyze_path(
        query.path
    )
    return QueryFeatures(
        kind=query.update.kind,
        path_text=str(query.path),
        steps=steps,
        dos_steps=dos,
        label_steps=labels,
        wildcard_steps=wildcards,
        quals=quals,
        qual_steps=qual_steps,
        qual_dos=qual_dos,
        selectivity=max(sel, 1e-6),
    )


# ----------------------------------------------------------------------
# Input shape
# ----------------------------------------------------------------------


#: Depth assumed for files (not parsed at planning time): typical
#: data-oriented XML is shallow.
DEFAULT_FILE_DEPTH = 8.0


@dataclass(frozen=True)
class InputProfile:
    """What one concrete input looks like to the planner."""

    form: str        #: "tree" (resident Element), "file" (path on disk)
                     #: or "arena" (frozen columnar document)
    nodes: int       #: node count — exact, capped, or extrapolated
    exact: bool      #: True when *nodes* is an exact count
    size_bytes: int = 0  #: file size (0 for resident trees)
    avg_depth: float = DEFAULT_FILE_DEPTH  #: mean node depth (sampled)

    def summary(self) -> str:
        if self.form == "file":
            return (
                f"file, {self.size_bytes} bytes "
                f"(~{self.nodes} nodes extrapolated)"
            )
        if self.form == "arena":
            return (
                f"frozen arena, {self.nodes} nodes, "
                f"mean depth {self.avg_depth:.1f}"
            )
        prefix = "" if self.exact else "≥"
        return (
            f"resident tree, {prefix}{self.nodes} nodes, "
            f"mean depth {self.avg_depth:.1f}"
        )


def estimate_nodes(
    root: Element, cap: int = PROFILE_CAP
) -> tuple[int, bool, float]:
    """Sample the tree's size and shape: (count, exact, mean depth).

    Stops at *cap* nodes: the planner's decisions are ratios between
    per-node costs, so once a tree is known to be "at least *cap* nodes"
    the exact total cannot change the chosen strategy — and profiling
    must never cost more than the transform it is planning.  Mean node
    depth is what prices a native descendant-qualifier check (it walks
    the candidate's subtree, and the sum of all subtree sizes is
    ``n × mean depth``).
    """
    count = 0
    depth_sum = 0
    stack = [(root, 1)]
    while stack:
        node, depth = stack.pop()
        count += 1
        depth_sum += depth
        if count >= cap:
            return count, False, depth_sum / count
        if node.is_element:
            stack.extend((child, depth + 1) for child in node.children)
    return count, True, depth_sum / max(1, count)


def profile_input(
    doc_or_path: Union[Element, str, os.PathLike], cap: int = PROFILE_CAP
) -> InputProfile:
    """Profile a resident tree, a frozen arena, or a file path.

    An arena profile is exact and free: the column lengths *are* the
    node count, and the mean depth is precomputed (cached) from the
    parent column — no sampling walk at all.
    """
    if isinstance(doc_or_path, Element):
        nodes, exact, avg_depth = estimate_nodes(doc_or_path, cap)
        return InputProfile(
            form="tree", nodes=nodes, exact=exact, avg_depth=avg_depth
        )
    from repro.xmltree.arena import FrozenDocument

    if isinstance(doc_or_path, FrozenDocument):
        return InputProfile(
            form="arena",
            nodes=len(doc_or_path),
            exact=True,
            avg_depth=doc_or_path.mean_depth(),
        )
    size = os.path.getsize(doc_or_path)
    return InputProfile(
        form="file",
        nodes=max(1, size // BYTES_PER_NODE),
        exact=False,
        size_bytes=size,
    )
