"""Prepared statements: parse and build automata exactly once, run many
times.

A :class:`PreparedTransform` owns its parsed query and both automata; a
:class:`PreparedQuery` owns a parsed FLWR user query; a
:class:`PreparedComposed` owns the Compose-Method rewrite of the pair —
built once, reused on every ``run``.  ``then`` chains prepared
transforms into a :class:`PreparedStack` (the semantics of stacked
transform queries: each stage sees the previous stage's result), and
``explain`` shows the cost-based plan for a concrete or hypothetical
input.

All ``run`` methods accept either a resident :class:`Element` or a file
path; strategy choice is delegated to the engine's planner unless a
fixed ``method=`` is forced.
"""

from __future__ import annotations

import os
import warnings
from typing import Iterable, Optional, Union

from repro.compose.compose import compose
from repro.engine.executor import ALL_STRATEGIES, run_tree_strategy
from repro.engine.features import (
    InputProfile,
    QueryFeatures,
    analyze_transform,
)
from repro.engine.planner import Plan, Planner
from repro.lru import LRUCache
from repro.obs import Profile, profiled, span
from repro.transform.query import TransformQuery
from repro.transform.sax_twopass import transform_sax_events, transform_sax_file
from repro.xmltree.arena import FrozenDocument, thaw
from repro.xmltree.node import Element
from repro.xmltree.parser import parse_file
from repro.xmltree.sax import events_to_text, events_to_tree, iter_sax_file
from repro.xmltree.serializer import write_file
from repro.xquery.ast import UserQuery
from repro.xquery.evaluator import evaluate_query

Input = Union[Element, "FrozenDocument", str, os.PathLike]


def _as_tree(doc_or_path: Input) -> Element:
    if isinstance(doc_or_path, Element):
        return doc_or_path
    if isinstance(doc_or_path, FrozenDocument):
        return thaw(doc_or_path)
    return parse_file(doc_or_path)


#: Per-prepared plan memo size: plans for the most recent distinct
#: inputs are reused across re-executions.
_PLAN_MEMO_SIZE = 16


def render_profile(snapshot: dict) -> str:
    """The human-readable "actual" block of an ``explain_analyze``
    report, from a :meth:`~repro.obs.profile.Profile.snapshot` dict.
    The same dict rides in slow-query-log entries verbatim."""
    est = snapshot.get("est_nodes")
    visited = snapshot.get("nodes_visited", 0)
    ratio = snapshot.get("visit_ratio")
    lines = ["actual:"]
    if est:
        suffix = f" (ratio {ratio})" if ratio is not None else ""
        lines.append(f"  {visited} nodes visited / {est} estimated{suffix}")
    else:
        lines.append(f"  {visited} nodes visited (no planner estimate)")
    lines.append(
        f"  {snapshot.get('subtrees_pruned', 0)} subtrees pruned, "
        f"{snapshot.get('dfa_transitions', 0)} DFA transitions "
        f"(+{snapshot.get('table_sets_added', 0)} state sets, "
        f"+{snapshot.get('table_moves_added', 0)} memoized moves)"
    )
    lines.append(
        f"  cache {snapshot.get('cache', 'warm')}, "
        f"{snapshot.get('serialize_bytes', 0)} serialize bytes, "
        f"{snapshot.get('results', 0)} results, "
        f"{snapshot.get('dur_us', 0) / 1000.0:.3f} ms"
    )
    return "\n".join(lines)


def describe_arena_memory(arena: FrozenDocument) -> str:
    """One explain()/stat line for an arena's columnar footprint."""
    info = arena.stats()
    return (
        f"arena: {info['nodes']} nodes ({info['elements']} elements) in "
        f"3 int columns + text/own-text columns; "
        f"{info['column_bytes']} column bytes, "
        f"{info['total_bytes']} bytes total"
    )


class PreparedTransform:
    """A transform query, parsed and compiled exactly once."""

    __slots__ = (
        "text", "query", "features", "selecting", "filtering", "planner",
        "engine", "compiled", "_plan_memo",
    )

    def __init__(
        self,
        text: str,
        query: TransformQuery,
        selecting,
        filtering,
        planner: Planner,
        features: Optional[QueryFeatures] = None,
        engine=None,
        compiled=None,
    ):
        self.text = text
        self.query = query
        self.selecting = selecting
        self.filtering = filtering
        self.planner = planner
        #: The owning Engine, when prepared through one: lets ``then``
        #: route raw query text through the engine's caches.
        self.engine = engine
        #: The CompiledPath bundle (NFAs + lazy DFAs), when prepared
        #: through an engine's compiled cache; None for hand-built
        #: instances (the automata still carry their own DFAs).
        self.compiled = compiled
        self.features = features or analyze_transform(query)
        self._plan_memo = LRUCache(_PLAN_MEMO_SIZE)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan_for(self, doc_or_path: Optional[Input] = None) -> Plan:
        """The plan for a concrete input (or a nominal 10k-node tree).

        Introspective: the decision is not tallied in the planner's
        execution counters (``run`` records its own).  Mirrors ``run``
        exactly — for a file below the stream threshold the plan is
        refined on the parsed tree, so explain never reports a
        different strategy than execution would use.
        """
        if doc_or_path is None:
            profile = InputProfile(form="tree", nodes=10_000, exact=False)
            return self.planner.plan_for_profile(
                self.query, profile, self.features, record=False
            )
        plan = self.planner.plan(
            self.query, doc_or_path, self.features, record=False
        )
        if plan.strategy != "stream" and not isinstance(
            doc_or_path, (Element, FrozenDocument)
        ):
            plan = self.planner.plan(
                self.query, parse_file(doc_or_path), self.features, record=False
            )
        return plan

    def _plan_memoized(self, tree: Element) -> Plan:
        """The plan for a resident tree, memoized per input identity.

        Re-executing a prepared transform on the same tree must not pay
        the profiling walk again; keying on ``id(tree)`` can at worst
        serve a *suboptimal* plan to a new tree that recycled the
        address — never a wrong result, since every strategy is
        semantically identical.
        """
        return self._plan_memo.get_or_compute(
            id(tree), lambda: self.planner.plan(self.query, tree, self.features)
        )

    def explain(self, doc_or_path: Optional[Input] = None) -> str:
        plan = self.plan_for(doc_or_path)
        header = [
            f"prepared transform: {self.query.update}",
            "compiled once: parse + selecting NFA + filtering NFA + lazy DFA",
        ]
        dfa = self.selecting.dfa()
        stats = dfa.stats()
        header.append(
            "selecting DFA: "
            f"{stats['sets']} interned state sets, "
            f"{stats['moves']} memoized transitions, "
            f"{stats['tracked_moves']} tracked moves "
            f"(over {stats['nfa_states']} NFA states)"
        )
        if isinstance(doc_or_path, FrozenDocument):
            header.append(describe_arena_memory(doc_or_path))
        if self.engine is not None:
            header.append("engine caches [hits/misses/evictions]:")
            for name, cache_stats in self.engine.cache.stats().items():
                header.append(
                    f"  {name:<14} {cache_stats['hits']}/{cache_stats['misses']}"
                    f"/{cache_stats['evictions']} "
                    f"(size {cache_stats['size']}/{cache_stats['maxsize']})"
                )
        return "\n".join(header) + "\n" + plan.describe()

    def explain_analyze(
        self, doc_or_path: Input, method: str = "auto"
    ) -> tuple[str, Element]:
        """Run the transform under an execution profile and report the
        planner's estimates next to what the run measured.

        Returns ``(report, transformed_tree)`` — the run is real (and
        tallied), not simulated, exactly like SQL ``EXPLAIN ANALYZE``.
        """
        prof = Profile()
        with profiled(prof):
            # Introspective pre-plan: stamps the estimate onto the
            # profile even when run() serves its plan from the memo.
            self.plan_for(doc_or_path)
            result = self.run(doc_or_path, method=method)
        prof.add_results(1)
        self.planner.observe_actual(prof)
        report = self.explain(doc_or_path)
        return report + "\n" + render_profile(prof.snapshot()), result

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, doc_or_path: Input, method: str = "auto") -> Element:
        """Evaluate on a tree or file, returning the transformed tree."""
        if method != "auto":
            if method not in ALL_STRATEGIES:
                raise ValueError(
                    f"unknown method {method!r}; expected one of "
                    f"{', '.join(ALL_STRATEGIES)} or 'auto'"
                )
            if method == "stream" and not isinstance(doc_or_path, Element):
                return self._stream_to_tree(doc_or_path)
            return self._run_tree(_as_tree(doc_or_path), method)
        if isinstance(doc_or_path, Element):
            plan = self._plan_memoized(doc_or_path)
            return self._run_tree(doc_or_path, plan.strategy)
        if isinstance(doc_or_path, FrozenDocument):
            # Transforms build a fresh output tree: thaw once, then run
            # the planned strategy (the arena profile is exact and free).
            plan = self.planner.plan(self.query, doc_or_path, self.features)
            return self._run_tree(thaw(doc_or_path), plan.strategy)
        # File input: a cheap size-only gateway decides stream-vs-parse;
        # only the plan that actually executes is tallied.
        gateway = self.planner.plan(
            self.query, doc_or_path, self.features, record=False
        )
        if gateway.strategy == "stream":
            self.planner.record(gateway)
            return self._stream_to_tree(doc_or_path)
        # The file had to be parsed anyway; plan on the real tree — its
        # sampled depth can flip the strategy (a file profile only
        # knows the byte size).
        tree = parse_file(doc_or_path)
        plan = self.planner.plan(self.query, tree, self.features)
        return self._run_tree(tree, plan.strategy)

    def run_many(
        self, inputs: Iterable[Input], method: str = "auto"
    ) -> list[Element]:
        """Evaluate over many inputs.

        With ``method="auto"`` the tree plan is made once, on the first
        tree-sized input, and reused (a batch is assumed homogeneous) —
        but every file keeps its own size-only stream safeguard, so one
        oversized file in a batch of small ones streams instead of
        being parsed whole.
        """
        inputs = list(inputs)
        if not inputs:
            return []
        if method != "auto":
            return [self.run(item, method=method) for item in inputs]
        results: list[Element] = []
        tree_method: Optional[str] = None
        for item in inputs:
            if (
                not isinstance(item, (Element, FrozenDocument))
                and self.streams(item)
            ):
                # run() records the executed stream plan itself.
                results.append(self.run(item, method="auto"))
                continue
            if tree_method is None:
                # First tree-sized input: plan once (recorded), parsing
                # a file input a single time for both plan and run.
                tree = _as_tree(item)
                tree_method = self._plan_memoized(tree).strategy
                results.append(self._run_tree(tree, tree_method))
                continue
            results.append(self.run(item, method=tree_method))
        return results

    def run_to_file(
        self,
        in_path: Union[str, os.PathLike, "FrozenDocument"],
        out_path: Union[str, os.PathLike],
        method: str = "auto",
        pretty: bool = False,
    ) -> None:
        """File-to-file evaluation; a stream plan never builds a tree.

        ``pretty`` is ignored (with a warning) when the plan streams:
        the bounded-memory guarantee is why streaming was chosen, and
        pretty-printing would require materializing the document.

        A :class:`~repro.xmltree.arena.FrozenDocument` input takes the
        **arena-native serialize path** (``method`` "auto" or
        "arena"): one DFA scan over the columns finds the matches, and
        the output file is written by splicing the update into the
        columnar serializer — untouched subtrees stream out as raw
        pre-order ranges; no output tree, no thaw.  Byte-identical to
        the tree path (asserted by the arena test suite).
        """
        if isinstance(in_path, FrozenDocument):
            self._run_arena_to_file(in_path, out_path, method, pretty)
            return
        replan = method == "auto"
        gateway = None
        if replan:
            # Size-only gateway: stream, or parse and plan on the tree.
            gateway = self.planner.plan(
                self.query, in_path, self.features, record=False
            )
            method = gateway.strategy
        if method == "stream":
            if pretty:
                warnings.warn(
                    "pretty-printing is ignored for streamed file-to-file "
                    "transforms (streaming keeps memory bounded)",
                    stacklevel=2,
                )
            if gateway is not None:
                self.planner.record(gateway)
            self.stream_file(in_path, out_path)
            return
        source = parse_file(in_path)
        if replan:
            # Parsed anyway: the sampled tree shape refines the plan,
            # and the executed choice is the one tallied.
            method = self.planner.plan(self.query, source, self.features).strategy
        tree = self._run_tree(source, method)
        write_file(tree, str(out_path), indent="  " if pretty else None)

    def _run_arena_to_file(
        self, arena: FrozenDocument, out_path, method: str, pretty: bool
    ) -> None:
        """The columnar transform-to-text fast path (see run_to_file)."""
        from dataclasses import replace

        if not pretty and method in ("auto", "arena"):
            plan = self.planner.plan(
                self.query, arena, self.features, record=False
            )
            plan = replace(
                plan,
                strategy="serialize",
                backend="arena",
                reasons=(
                    "file output from a frozen arena: one DFA scan finds "
                    "the matches, untouched pre-order ranges stream out "
                    "as raw text — no output tree, no thaw",
                ),
            )
            self.planner.record(plan)
            from repro.automata.arena_run import write_arena_transformed

            with span("serialize"), open(out_path, "w", encoding="utf-8") as handle:
                handle.write('<?xml version="1.0" encoding="utf-8"?>\n')
                write_arena_transformed(
                    arena, self.query.update, self.selecting, handle.write
                )
                handle.write("\n")
            return
        # Pretty output (or a forced tree method): thaw and take the
        # ordinary tree path.
        tree = thaw(arena)
        strategy = method
        if method in ("auto", "arena"):
            strategy = self.planner.plan(self.query, tree, self.features).strategy
        tree_out = self._run_tree(tree, strategy)
        write_file(tree_out, str(out_path), indent="  " if pretty else None)

    # ------------------------------------------------------------------
    # Chaining
    # ------------------------------------------------------------------

    def then(self, other: Union["PreparedTransform", str]) -> "PreparedStack":
        """This transform, then *other* on its result."""
        return PreparedStack([self]).then(other)

    # ------------------------------------------------------------------

    def _run_tree(self, root: Element, strategy: str) -> Element:
        if strategy == "stream":
            strategy = "sax"
        return run_tree_strategy(
            strategy,
            root,
            self.query,
            selecting=self.selecting,
            filtering=self.filtering,
        )

    def _stream_to_tree(self, in_path: Input) -> Element:
        return events_to_tree(self._stream_events(in_path))

    def _stream_events(self, in_path: Input):
        def source():
            return iter_sax_file(str(in_path))

        return transform_sax_events(
            source, self.query, self.selecting, self.filtering
        )

    def gateway_plan(self, in_path: Input) -> Plan:
        """The size-only pre-parse plan for a file (introspective: not
        tallied; does not read the file's content)."""
        return self.planner.plan(
            self.query, in_path, self.features, record=False
        )

    def streams(self, in_path: Input) -> bool:
        """Would the size-only gateway stream this file?"""
        return self.gateway_plan(in_path).strategy == "stream"

    def stream_to(self, in_path: Input, handle) -> None:
        """Stream the transformed document into a writable *handle* —
        memory stays bounded by document depth; no tree is built."""
        events_to_text(self._stream_events(in_path), handle)

    def stream_if_planned(self, in_path: Input, handle) -> bool:
        """Stream to *handle* iff the size-only gateway plans streaming:
        records the executed plan and returns True, or returns False
        without reading the file.  Keeps the plan/tally bookkeeping in
        one place for callers that want a streaming fast path."""
        gateway = self.gateway_plan(in_path)
        if gateway.strategy != "stream":
            return False
        self.planner.record(gateway)
        self.stream_to(in_path, handle)
        return True

    def stream_file(
        self, in_path: Input, out_path: Optional[Input] = None
    ) -> Optional[str]:
        """``twoPassSAX`` file-to-file (or to a returned string) with
        the prepared automata; memory stays bounded by document depth."""
        return transform_sax_file(
            str(in_path),
            self.query,
            str(out_path) if out_path is not None else None,
            selecting=self.selecting,
            filtering=self.filtering,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PreparedTransform({self.query.update!s})"


class PreparedStack:
    """A chain of prepared transforms: stage i+1 sees stage i's result."""

    __slots__ = ("stages",)

    def __init__(self, stages: list[PreparedTransform]):
        if not stages:
            raise ValueError("a prepared stack needs at least one stage")
        self.stages = list(stages)

    def then(self, other: Union[PreparedTransform, "PreparedStack", str]) -> "PreparedStack":
        if isinstance(other, str):
            other = _prepare_like(self.stages[0], other)
        if isinstance(other, PreparedStack):
            return PreparedStack(self.stages + other.stages)
        return PreparedStack(self.stages + [other])

    def run(self, doc_or_path: Input, method: str = "auto") -> Element:
        current = _as_tree(doc_or_path)
        for stage in self.stages:
            current = stage.run(current, method=method)
        return current

    def run_many(self, inputs: Iterable[Input], method: str = "auto") -> list[Element]:
        return [self.run(item, method=method) for item in inputs]

    def explain(self, doc_or_path: Optional[Input] = None) -> str:
        out = [f"prepared stack: {len(self.stages)} stage(s)"]
        for index, stage in enumerate(self.stages, 1):
            plan = stage.plan_for(doc_or_path)
            out.append(f"stage {index}: {stage.query.update}")
            out.append("  " + plan.describe().replace("\n", "\n  "))
            # Later stages see a transformed tree whose size we do not
            # know yet; plan them against the same input profile.
        return "\n".join(out)

    def __len__(self) -> int:
        return len(self.stages)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PreparedStack({len(self.stages)} stages)"


def _prepare_like(template: PreparedTransform, text: str) -> PreparedTransform:
    """Prepare *text* the way the template was prepared (used when
    ``then`` is handed raw query text instead of a prepared object):
    through the owning engine's caches, falling back to the process-wide
    default engine for the rare template built without one."""
    if template.engine is not None:
        return template.engine.prepare_transform(text)
    from repro.engine.engine import default_engine

    return default_engine().prepare_transform(text)


class PreparedQuery:
    """A FLWR user query, parsed exactly once.

    Reads have a **backend** dimension instead of a strategy choice:
    handed a :class:`~repro.xmltree.arena.FrozenDocument`, ``run``
    takes the columnar evaluator (indices over pre-order ranges,
    matches thawed only on materialization); handed a tree or file, it
    walks Node objects as before.  The planner records the choice and
    ``explain`` shows it.
    """

    __slots__ = ("text", "query", "planner", "engine")

    def __init__(
        self,
        text: str,
        query: UserQuery,
        planner: Optional[Planner] = None,
        engine=None,
    ):
        self.text = text
        self.query = query
        self.planner = planner
        self.engine = engine

    def _nfa_for(self):
        if self.engine is not None:
            return self.engine.cache.selecting_nfa_for
        return None

    def run(self, doc_or_path: Input) -> list:
        if isinstance(doc_or_path, FrozenDocument):
            with span("scan"):
                if self.planner is not None:
                    self.planner.plan_read(doc_or_path)
                from repro.xquery.arena_eval import evaluate_query_arena

                return evaluate_query_arena(
                    doc_or_path, self.query, nfa_for=self._nfa_for()
                )
        with span("scan"):
            return evaluate_query(_as_tree(doc_or_path), self.query)

    def run_refs(self, arena: FrozenDocument) -> list:
        """Zero-thaw evaluation: element results stay pre-order indices
        (serialize them straight from the columns, or thaw on demand).
        """
        from repro.xquery.arena_eval import ArenaEvaluator

        with span("scan"):
            if self.planner is not None:
                self.planner.plan_read(arena)
            return ArenaEvaluator(arena, self._nfa_for()).evaluate_refs(self.query)

    def run_many(self, inputs: Iterable[Input]) -> list[list]:
        return [self.run(item) for item in inputs]

    def explain(self, doc_or_path: Optional[Input] = None) -> str:
        lines = [f"prepared user query: {self.query}"]
        if self.planner is not None and doc_or_path is not None:
            plan = self.planner.plan_read(doc_or_path, record=False)
            lines.append(plan.describe())
        else:
            lines.append(
                "strategy: direct evaluation on the target tree "
                "(pass an input to see the backend decision)"
            )
        if isinstance(doc_or_path, FrozenDocument):
            lines.append(describe_arena_memory(doc_or_path))
        lines.append(
            "(compose with a prepared transform via "
            "Engine.prepare_composed to query a virtual view)"
        )
        return "\n".join(lines)

    def explain_analyze(self, doc_or_path: Input) -> tuple[str, list]:
        """Run the query under an execution profile and report the
        planner's estimated rows next to the measured scan.

        Returns ``(report, results)``.  On a frozen arena the run is
        the zero-thaw ref path plus the columnar serializer, so every
        counter (nodes visited, prunes, DFA transitions, table growth,
        serialize bytes) is genuinely measured by the loops that did
        the work; on a Node tree the visit count is the realized input
        walk.
        """
        prof = Profile()
        with profiled(prof):
            if isinstance(doc_or_path, FrozenDocument):
                refs = self.run_refs(doc_or_path)
                from repro.automata.arena_run import serialize_arena_items

                results = serialize_arena_items(doc_or_path, refs)
            else:
                if self.planner is not None:
                    self.planner.plan_read(doc_or_path, record=False)
                results = self.run(doc_or_path)
                prof.add_results(len(results))
        if self.planner is not None:
            self.planner.observe_actual(prof)
        report = self.explain(doc_or_path)
        return report + "\n" + render_profile(prof.snapshot()), results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PreparedQuery({self.text!r})"


class PreparedComposed:
    """A user query fused with a transform query (the Compose Method):
    the composed plan is built once and runs on the *original* tree —
    the virtual view is never materialized."""

    __slots__ = ("user", "transform", "plan")

    def __init__(self, user: PreparedQuery, transform: PreparedTransform):
        self.user = user
        self.transform = transform
        # The prepared transform's selecting NFA (with its warm DFA
        # tables) backs the plan's spliced topDown calls.
        self.plan = compose(user.query, transform.query, nfa=transform.selecting)

    def run(self, doc_or_path: Input) -> list:
        from repro.compose.compose import evaluate_composed

        return evaluate_composed(_as_tree(doc_or_path), self.plan)

    def run_many(self, inputs: Iterable[Input]) -> list[list]:
        return [self.run(item) for item in inputs]

    def run_naive(self, doc_or_path: Input) -> list:
        """The oracle: materialize the view, then query it."""
        return self.user.run(self.transform.run(doc_or_path))

    def explain(self, doc_or_path: Optional[Input] = None) -> str:
        return (
            f"prepared composition (Compose Method, Section 4)\n"
            f"user query: {self.user.query}\n"
            f"transform:  {self.transform.query.update}\n"
            f"composed plan: {self.plan}\n"
            "strategy: evaluate the composed plan on the base tree; "
            "the view is never materialized"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PreparedComposed()"
