"""The Engine facade: one entry point that prepares once, plans per
input, and executes many times.

::

    from repro import Engine

    engine = Engine()
    strip = engine.prepare_transform(
        'transform copy $a := doc("db") modify do delete $a//price return $a'
    )
    view = strip.run(doc)              # planner picks the strategy
    print(strip.explain(doc))          # ...and shows its working
    results = engine.prepare_composed(
        "for $x in part/supplier return $x", strip
    ).run(doc)

The engine owns the compiled-artifact caches (parses, automata,
composed plans — a :class:`~repro.compiled.CompiledCache`) and the
cost-based :class:`~repro.engine.planner.Planner`; ``prepare_*`` calls
are memoized by source text, so repeated preparation is a dictionary
hit.  A process-wide :func:`default_engine` backs the CLI and the thin
module-level shims.
"""

from __future__ import annotations

import threading
from typing import Optional, Union

from repro.engine.planner import Planner
from repro.engine.prepared import (
    PreparedComposed,
    PreparedQuery,
    PreparedStack,
    PreparedTransform,
)
from repro.compiled import CompiledCache
from repro.lru import LRUCache
from repro.obs import current_profile, span
from repro.transform.query import TransformQuery
from repro.xmltree.node import Element


class Engine:
    """Prepared-statement facade over the five evaluation strategies,
    the Compose Method, and the streaming path."""

    def __init__(
        self,
        planner: Optional[Planner] = None,
        cache_size: int = 256,
    ):
        self.planner = planner or Planner()
        self.cache = CompiledCache(cache_size)
        self._prepared = LRUCache(cache_size)
        # Serializes first-time preparation of a given text so that
        # concurrent clients share ONE prepared object (and therefore
        # one set of warm DFA tables) instead of each building their
        # own on a cold-cache race.  Warm lookups never take it.
        self._build_lock = threading.Lock()

    def _prepare_shared(self, key: tuple, factory):
        """Memoized preparation with cross-thread sharing: the fast
        path is a lock-free cache hit; a miss builds under the engine's
        build lock with a double-check, so every concurrent caller for
        the same *key* receives the same prepared object."""
        found = self._prepared.get(key)
        if found is not None:
            return found

        def build():
            # Only a cold build is a "compile": warm lookups above (and
            # the double-checked hit inside get_or_compute) emit no span.
            # A run profiled through a cold build paid the compile — its
            # cache class flips from "warm" to "cold".
            profile = current_profile()
            if profile is not None:
                profile.note_compile()
            with span("compile"):
                return factory()

        with self._build_lock:
            return self._prepared.get_or_compute(key, build)

    # ------------------------------------------------------------------
    # Preparation (parse + compile exactly once per distinct text)
    # ------------------------------------------------------------------

    def prepare_transform(
        self, text: Union[str, TransformQuery, PreparedTransform]
    ) -> PreparedTransform:
        """Parse a transform query and build both automata, once.

        Only *source text* is memoized: an already-parsed
        :class:`TransformQuery` is wrapped fresh (its rendering is
        lossy — e.g. float literals — so it must never be a cache key);
        the automata underneath are still shared via the Path-keyed
        compiled cache.
        """
        if isinstance(text, PreparedTransform):
            return text
        if isinstance(text, TransformQuery):
            return self._build_transform(text)
        query = self.cache.transform(text)
        return self._prepare_shared(
            ("transform", text), lambda: self._build_transform(query, text)
        )

    def _build_transform(
        self, query: TransformQuery, text: Optional[str] = None
    ) -> PreparedTransform:
        # The CompiledPath bundle is keyed by the parsed Path: two
        # transform texts embedding the same path share one pair of
        # automata — and therefore one set of warm lazy-DFA tables.
        compiled = self.cache.compiled_path_for(query.path)
        return PreparedTransform(
            text if text is not None else str(query),
            query,
            compiled.selecting,
            compiled.filtering,
            self.planner,
            engine=self,
            compiled=compiled,
        )

    def prepare_query(
        self, text: Union[str, PreparedQuery]
    ) -> PreparedQuery:
        """Parse a FLWR user query, once."""
        if isinstance(text, PreparedQuery):
            return text
        return self._prepare_shared(
            ("query", text),
            lambda: PreparedQuery(
                text, self.cache.user_query(text), planner=self.planner, engine=self
            ),
        )

    def prepare_composed(
        self,
        user: Union[str, PreparedQuery],
        transform: Union[str, TransformQuery, PreparedTransform],
    ) -> PreparedComposed:
        """Fuse a user query with a transform query (Compose Method),
        once per pair of source texts.

        Memoized only when the transform's text is *authentic* (it was
        prepared from source text): a text synthesized by ``str(query)``
        is lossy and two different queries may render identically.
        """
        prepared_user = self.prepare_query(user)
        prepared_transform = self.prepare_transform(transform)
        authentic = (
            self._prepared.get(("transform", prepared_transform.text))
            is prepared_transform
        )
        if not authentic:
            return PreparedComposed(prepared_user, prepared_transform)
        return self._prepare_shared(
            ("composed", prepared_user.text, prepared_transform.text),
            lambda: PreparedComposed(prepared_user, prepared_transform),
        )

    def prepare_stack(self, *texts: Union[str, PreparedTransform]) -> PreparedStack:
        """Prepare a chain of transforms: each stage sees the previous
        stage's result."""
        return PreparedStack([self.prepare_transform(t) for t in texts])

    # ------------------------------------------------------------------
    # One-shot conveniences
    # ------------------------------------------------------------------

    def transform(self, text: str, doc_or_path, method: str = "auto") -> Element:
        return self.prepare_transform(text).run(doc_or_path, method=method)

    def query(self, text: str, doc_or_path) -> list:
        return self.prepare_query(text).run(doc_or_path)

    def composed(self, user: str, transform: str, doc_or_path) -> list:
        return self.prepare_composed(user, transform).run(doc_or_path)

    def explain(self, text: str, doc_or_path=None) -> str:
        """Plan output for a transform or user query (detected by its
        leading keyword)."""
        if text.lstrip().startswith("transform"):
            return self.prepare_transform(text).explain(doc_or_path)
        return self.prepare_query(text).explain(doc_or_path)

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "prepared": self._prepared.stats(),
            "compiled": self.cache.stats(),
            "planner": self.planner.stats(),
        }

    def bind_metrics(self, registry) -> None:
        """Expose the engine's caches, planner tallies and aggregate
        DFA table sizes through a :class:`~repro.obs.registry.
        MetricsRegistry` — all as lazily sampled probes, so preparing
        and running pay nothing extra."""
        registry.probe("engine.prepared.cache", self._prepared.stats)
        self.cache.bind_metrics(registry)
        self.planner.bind_metrics(registry)


_default_engine: Optional[Engine] = None
_default_lock = threading.Lock()


def default_engine() -> Engine:
    """The process-wide engine behind the CLI and module-level shims."""
    global _default_engine
    with _default_lock:
        if _default_engine is None:
            _default_engine = Engine()
        return _default_engine
